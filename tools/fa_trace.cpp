// fa_trace — command-line front end of the failure-analysis toolkit.
//
//   fa_trace simulate --out DIR|FILE.fac [--scale S] [--seed N]
//                     [--checkpoint-every N] [--io-crash-at BYTE [--io-seed N]]
//       Simulate a datacenter trace. A directory --out exports the
//       five-file CSV schema (servers/tickets/weekly_usage/power_events/
//       snapshots); a FILE.fac --out streams chunks straight into the
//       binary columnar format with memory bounded by chunk size, so
//       --scale may exceed 1 (e.g. 8x the paper fleet). Columnar only:
//       --checkpoint-every N embeds a footer checkpoint every N chunks
//       (a crash then loses at most one chunk); --io-crash-at BYTE routes
//       the writes through the deterministic fault injector and simulates
//       a power loss at that file offset (exit code 3), leaving a
//       truncated file for `fa_trace recover` to salvage.
//
//   fa_trace report [--lenient] [--scale S] [DIR|FILE.fac]
//       Load a CSV or columnar trace and print the full failure-analysis summary:
//       population, classification, failure rates, recurrence, repair
//       times, spatial dependency and reliability metrics. With
//       --lenient, defective rows are repaired or quarantined instead of
//       aborting the load, and the sanitization report is printed first.
//       On a columnar file --lenient is storage-level instead: chunks that
//       fail their checksum are skipped, the degraded-read report is
//       printed, and the analysis is marked as covering partial data.
//       Without DIR, the report runs on a default simulated trace
//       (paper defaults scaled by --scale, default 0.1) via the artifact
//       cache — no files needed.
//
//   fa_trace profile [COMMAND ...]
//       Run any fa_trace command (default: report on the default
//       simulation) with instrumentation on, print the metrics table and
//       write fa_metrics.json + fa_trace_events.json (paths overridable
//       with the global --metrics / --trace-out flags). The trace file
//       loads in chrome://tracing or https://ui.perfetto.dev. The command
//       is then re-run at 1/2/4/8 worker threads and a per-stage serial
//       fraction (Amdahl least-squares fit over the four runs) is printed.
//
//   fa_trace sanitize DIR [--counts-csv FILE] [--defects-csv FILE]
//       Load a CSV trace in lenient mode and print the sanitization
//       report (per-class defect counts, per-file kept/dropped rows).
//       Optionally write machine-readable per-class counts and the full
//       defect list as CSV.
//
//   fa_trace corrupt --in DIR --out DIR [--seed N] [--rate R]
//                    [--mix class=rate,...] [--counts-csv FILE]
//       Deterministically inject defects into a clean export. --rate R
//       sets every class to rate R; --mix overrides individual classes
//       (e.g. --mix duplicate_id=0.02,unknown_enum=0.01). Identical
//       seed + mix produce byte-identical output at any thread count.
//
//   fa_trace convert --in DIR|FILE.fac --out DIR|FILE.fac
//                    [--chunk-rows N]
//       Bridge CSV <-> columnar: a directory input converts to a columnar
//       file, a columnar input back to the CSV directory schema (CSV stays
//       the canonical interchange format). Prints per-column size and
//       dictionary-cardinality statistics for the columnar side.
//
//   fa_trace info FILE.fac
//       Dump a columnar file's footer: observation windows, per-table row
//       and chunk counts, and each chunk's offset, size, checksum and
//       per-column min/max statistics. On a truncated or crash-damaged
//       file the footer is unreadable; info then prints a salvage
//       diagnostic (last valid chunk, estimated recoverable rows) and
//       points at `fa_trace recover` (exit code 3).
//
//   fa_trace recover IN.fac OUT.fac [--report FILE]
//       Salvage a damaged columnar file: scan the frame stream for the
//       longest valid prefix (verifying every chunk checksum), then
//       rewrite the surviving rows as a fresh, fully valid columnar file
//       with a clean footer. Prints the salvage report (optionally also
//       written to --report FILE). Recovery is idempotent: recovering an
//       already-recovered file reproduces it byte for byte.
//
//   fa_trace watch [DIR|FILE.fac] [--scale S] [--seed N] [--shift D:F]...
//                  [--cutoff D] [--ooo reject|buffer|drop] [--slack MIN]
//                  [--threshold NATS] [--warmup-weeks W]
//                  [--alerts-out FILE] [--score] [--horizon D]
//                  [--stats-every D [--stats-out FILE]]
//       Replay one trace (default: a simulated fleet) as a timestamp-ordered
//       event stream through the online detector and print alerts live with
//       their detection timestamps, then the stream summary. Each --shift
//       D:F multiplies the failure rate by F from day D of the stream on
//       (the scripted ground truth); --cutoff D ends the stream early at
//       day D. --ooo selects the out-of-order policy (--slack sets the
//       reorder-buffer tolerance in minutes). --alerts-out writes the
//       byte-stable alert log (identical at any --threads); --score prints
//       precision/recall/latency against the injected change points, with
//       an alert counted for a change within --horizon days (default 84 —
//       low-rate strata near the arming floor legitimately take weeks).
//       --stats-every D emits a JSONL health heartbeat every D stream-days
//       (schema: tools/health_schema.json) to --stats-out, or interleaved
//       on stdout without it.
//
//   fa_trace serve [--tenants N] [--scale S] [--seed BASE] [--shift D:F]...
//                  [--cutoff D] [--threshold NATS] [--warmup-weeks W]
//                  [--score] [--horizon D] [--throttle T:MIN]...
//                  [--stats-every D [--stats-out FILE]]
//       Multiplex N independent tenant streams (seeds BASE..BASE+N-1) over
//       the shared thread pool, one online detector per tenant, and print
//       the per-tenant summary table in tenant order. Results are
//       bit-identical at any --threads; per-tenant event/alert counters are
//       exported under fa.detect.* with a tenant label (see --metrics).
//       Each --throttle T:MIN puts a deterministic slow-consumer model
//       (virtual single-server queue, MIN sim-minutes of service per event)
//       in front of tenant T's detector: events are forwarded unchanged so
//       detection is unaffected, but backpressure (queue depth, waits) is
//       accounted and printed. --stats-every D streams per-tenant JSONL
//       health heartbeats, merged in (sim-time, tenant) order, to
//       --stats-out or stdout; the "det" object of every line is
//       byte-identical at any --threads.
//
//   fa_trace top FILE.jsonl
//       Render the latest heartbeat per tenant from a --stats-out file as a
//       health table (events, alerts, lag quantiles, reorder-buffer and
//       backpressure state), plus the per-stratum rows that have fired
//       alerts. A cheap terminal dashboard over the JSONL schema.
//
//   fa_trace classify DIR|FILE.fac
//       Load a CSV or columnar trace, run crash extraction + k-means classification
//       and print the per-class ticket distribution (and, when the trace
//       carries ground-truth labels, the accuracy and confusion matrix).
//
//   fa_trace fit DIR (interfailure|repair) (pm|vm)
//       Fit the candidate distributions to the chosen metric and print
//       the ranked results.
//
//   fa_trace transitions DIR
//       Print the same-server weekly failure class-transition matrix.
//
// Global flags (any command):
//   --threads N       worker threads for parallel stages (0 = all cores)
//   --no-cache        disable the in-process artifact cache
//   --no-obs          turn off metric/span recording at runtime
//   --metrics PATH    write the metrics JSON snapshot before exiting
//   --trace-out PATH  write the Chrome trace-event JSON before exiting
//
// Exit codes: 0 success, 1 analysis/data error, 2 usage error,
// 3 I/O failure (unreadable, truncated or crash-damaged file).
#include <algorithm>
#include <array>
#include <cstdlib>
#include <exception>
#include <filesystem>
#include <map>
#include <span>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "src/analysis/artifact_cache.h"
#include "src/analysis/failure_rates.h"
#include "src/analysis/interfailure.h"
#include "src/analysis/out_of_core.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/reliability.h"
#include "src/analysis/repair_times.h"
#include "src/analysis/report.h"
#include "src/analysis/spatial.h"
#include "src/analysis/transitions.h"
#include "src/detect/serve.h"
#include "src/inject/corruptor.h"
#include "src/inject/io_faults.h"
#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/sim/simulator.h"
#include "src/sim/validation.h"
#include "src/stats/fitting.h"
#include "src/trace/columnar_io.h"
#include "src/trace/csv_io.h"
#include "src/trace/recovery.h"
#include "src/trace/sanitize.h"
#include "src/trace/trace_writer.h"
#include "src/util/error.h"
#include "src/util/io.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"

namespace {

using namespace fa;

int usage() {
  std::cerr
      << "usage:\n"
         "  fa_trace simulate --out DIR|FILE.fac [--scale S] [--seed N]\n"
         "                    [--checkpoint-every N] [--io-crash-at BYTE "
         "[--io-seed N]]\n"
         "  fa_trace report [--lenient] [--scale S] [DIR|FILE.fac]\n"
         "  fa_trace convert --in DIR|FILE.fac --out DIR|FILE.fac "
         "[--chunk-rows N]\n"
         "  fa_trace info FILE.fac\n"
         "  fa_trace recover IN.fac OUT.fac [--report FILE]\n"
         "  fa_trace watch [DIR|FILE.fac] [--scale S] [--seed N] "
         "[--shift D:F]...\n"
         "                 [--cutoff D] [--ooo reject|buffer|drop] "
         "[--slack MIN]\n"
         "                 [--threshold NATS] [--warmup-weeks W]\n"
         "                 [--alerts-out FILE] [--score] [--horizon D]\n"
         "                 [--stats-every D [--stats-out FILE]]\n"
         "  fa_trace serve [--tenants N] [--scale S] [--seed BASE] "
         "[--shift D:F]...\n"
         "                 [--cutoff D] [--threshold NATS] "
         "[--warmup-weeks W]\n"
         "                 [--score] [--horizon D] [--throttle T:MIN]...\n"
         "                 [--stats-every D [--stats-out FILE]]\n"
         "  fa_trace top FILE.jsonl\n"
         "  fa_trace classify DIR|FILE.fac\n"
         "  fa_trace fit DIR (interfailure|repair) (pm|vm)\n"
         "  fa_trace transitions DIR\n"
         "  fa_trace sanitize DIR [--counts-csv FILE] [--defects-csv FILE]\n"
         "  fa_trace corrupt --in DIR --out DIR [--seed N] [--rate R]\n"
         "                   [--mix class=rate,...] [--counts-csv FILE]\n"
         "  fa_trace profile [COMMAND ...]\n"
         "global flags: --threads N, --no-cache, --no-obs,\n"
         "              --metrics PATH, --trace-out PATH\n"
         "exit codes: 0 ok, 1 analysis/data error, 2 usage, 3 I/O failure\n";
  return 2;
}

int unknown_command(const std::string& command) {
  std::cerr << "fa_trace: unknown command '" << command
            << "'\navailable commands: simulate, report, watch, serve, top, "
               "convert, info, recover, classify, fit, transitions, "
               "sanitize, corrupt, profile\n";
  return usage();
}

// Writes `text` to `path`, failing loudly (reports written to an
// unwritable location must not vanish silently).
void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  require(out.good(), "cannot open " + path + " for writing");
  out << text;
  require(out.good(), "failed writing " + path);
}

// Loads a CSV directory or a columnar file and runs the analysis pipeline
// over it, sharing both artifacts through the process-wide cache (so a
// future multi-command mode pays for each trace once).
analysis::AnalysisContext loaded_context(const std::string& dir) {
  auto db = std::make_shared<const trace::TraceDatabase>(
      trace::is_columnar_file(dir) ? trace::load_columnar(dir)
                                   : trace::load_database(dir));
  auto pipeline = analysis::ArtifactCache::global().pipeline(db);
  return {std::move(db), std::move(pipeline)};
}

int cmd_simulate(const std::vector<std::string>& args) {
  std::string out;
  double scale = 1.0;
  std::uint64_t seed = 0;
  bool have_seed = false;
  std::uint32_t checkpoint_every = 0;
  std::int64_t io_crash_at = -1;
  std::uint64_t io_seed = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      have_seed = true;
    } else if (args[i] == "--checkpoint-every" && i + 1 < args.size()) {
      checkpoint_every = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else if (args[i] == "--io-crash-at" && i + 1 < args.size()) {
      io_crash_at = std::strtoll(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--io-seed" && i + 1 < args.size()) {
      io_seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else {
      std::cerr << "simulate: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (out.empty() || scale <= 0.0) return usage();
  if ((checkpoint_every > 0 || io_crash_at >= 0) && !out.ends_with(".fac")) {
    std::cerr << "simulate: --checkpoint-every / --io-crash-at apply to "
                 "columnar (.fac) output only\n";
    return usage();
  }

  auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
  if (have_seed) config.seed = seed;

  if (out.ends_with(".fac")) {
    // Stream chunks straight into the columnar format: no database is ever
    // materialized, so large --scale factors run in chunk-bounded memory.
    trace::WriterOptions options;
    options.checkpoint_every_chunks = checkpoint_every;
    std::unique_ptr<io::WritableFile> file =
        std::make_unique<io::PosixWritableFile>(out);
    if (io_crash_at >= 0) {
      inject::IoFaultConfig faults;
      faults.seed = io_seed;
      faults.crash_at_byte = io_crash_at;
      file = std::make_unique<inject::FaultyFile>(std::move(file), faults);
    }
    trace::ColumnarTraceWriter writer(std::move(file), options);
    sim::simulate_to(config, writer);
    std::cout << "wrote " << writer.server_count() << " servers, "
              << writer.ticket_count() << " tickets to " << out
              << " (columnar)\n";
    return 0;
  }

  const auto db_ptr = analysis::ArtifactCache::global().database(config);
  const trace::TraceDatabase& db = *db_ptr;
  const auto validation = sim::validate_trace(db, config);
  trace::save_database(db, out);
  std::cout << "wrote " << db.servers().size() << " servers, "
            << db.tickets().size() << " tickets to " << out << "\n"
            << validation.to_string();
  return validation.ok() ? 0 : 1;
}

int cmd_report(const std::string& dir, bool lenient, double scale) {
  analysis::AnalysisContext ctx;
  if (dir.empty()) {
    // No trace directory: report on the default simulation (via the cache,
    // so `profile report` exercises the full simulate + analyze path).
    const auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
    ctx = analysis::cached_context(config);
  } else if (lenient && trace::is_columnar_file(dir)) {
    // Storage-level leniency: skip checksum-failing chunks, report what was
    // lost and analyze the surviving rows (clearly marked as partial).
    trace::DegradedReadReport degraded;
    auto db = std::make_shared<const trace::TraceDatabase>(
        trace::load_columnar_lenient(dir, degraded));
    std::cout << degraded.to_string();
    if (degraded.degraded()) {
      std::cout << "warning: analysis below covers PARTIAL DATA; recover "
                   "the file with `fa_trace recover`\n";
    }
    std::cout << "\n";
    auto pipeline = analysis::ArtifactCache::global().pipeline(db);
    ctx = {std::move(db), std::move(pipeline)};
  } else if (lenient) {
    auto result = analysis::analyze_lenient(dir);
    std::cout << result.report.to_string();
    if (result.tickets_dropped > 0) {
      std::cout << "tickets dropped before analysis: "
                << result.tickets_dropped << "\n";
    }
    std::cout << "\n";
    ctx = {std::move(result.db), std::move(result.pipeline)};
  } else {
    ctx = loaded_context(dir);
  }
  const trace::TraceDatabase& db = *ctx.db;
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto& failures = pipeline.failures();

  std::cout << "trace: " << db.servers().size() << " servers ("
            << db.server_count(trace::MachineType::kPhysical) << " PM, "
            << db.server_count(trace::MachineType::kVirtual) << " VM), "
            << db.tickets().size() << " tickets, " << failures.size()
            << " crash tickets\n\n";

  analysis::TextTable table({"metric", "PM", "VM"});
  std::array<analysis::ReliabilityReport, 2> reports;
  std::array<double, 2> recurrence{}, random{};
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    reports[static_cast<std::size_t>(t)] =
        analysis::reliability_report(db, failures, scope);
    recurrence[static_cast<std::size_t>(t)] = analysis::recurrent_probability(
        db, failures, scope, kMinutesPerWeek);
    random[static_cast<std::size_t>(t)] = analysis::random_failure_probability(
        db, failures, scope, analysis::Granularity::kWeekly);
  }
  const auto row = [&](const std::string& name, auto fn) {
    table.add_row({name, fn(0), fn(1)});
  };
  row("weekly failure rate", [&](int t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    return format_double(
        analysis::failure_rate_summary(db, failures, scope,
                                       analysis::Granularity::kWeekly)
            .mean,
        5);
  });
  row("random weekly probability",
      [&](int t) { return format_double(random[static_cast<std::size_t>(t)], 5); });
  row("recurrent weekly probability", [&](int t) {
    return format_double(recurrence[static_cast<std::size_t>(t)], 3);
  });
  row("recurrence ratio", [&](int t) {
    const auto i = static_cast<std::size_t>(t);
    return random[i] > 0 ? format_double(recurrence[i] / random[i], 1) + "x"
                         : std::string("n.a.");
  });
  row("MTTR [hours]", [&](int t) {
    return format_double(reports[static_cast<std::size_t>(t)].mttr_hours, 1);
  });
  row("availability", [&](int t) {
    return format_double(
               100.0 * reports[static_cast<std::size_t>(t)].availability, 4) +
           "%";
  });
  std::cout << table.to_string() << "\n";

  const auto spatial = analysis::analyze_spatial(db, pipeline.class_lookup());
  std::cout << "incidents: " << spatial.incident_count << " ("
            << format_double(100.0 * spatial.all.two_or_more, 1)
            << "% affect >= 2 servers; widest "
            << spatial.max_servers_in_incident << " servers)\n";
  return 0;
}

// Renders the per-column size and dictionary statistics of a columnar file
// (the compression story: which columns carry the bytes, and how small the
// per-chunk free-text dictionaries stay).
std::string columnar_stats(const trace::FileReport& report) {
  analysis::TextTable table({"table", "column", "encoding", "bytes", "dict"});
  for (const trace::ColumnReport& c : report.columns) {
    table.add_row({std::string(trace::columnar::table_name(c.table)), c.name,
                   std::string(trace::columnar::encoding_name(c.encoding)),
                   std::to_string(c.bytes),
                   c.max_dict_entries > 0
                       ? std::to_string(c.max_dict_entries) + " max/chunk"
                       : std::string("-")});
  }
  std::ostringstream out;
  out << table.to_string() << "rows:";
  for (trace::columnar::Table t : trace::columnar::kAllTables) {
    const auto i = static_cast<std::size_t>(t);
    out << " " << trace::columnar::table_name(t) << "="
        << report.rows[i] << " (" << report.chunks[i] << " chunks)";
  }
  out << "\ndata " << report.data_bytes << " B + footer "
      << report.footer_bytes << " B\n";
  return out.str();
}

int cmd_convert(const std::vector<std::string>& args) {
  std::string in, out;
  std::uint32_t chunk_rows = trace::kDefaultChunkRows;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--in" && i + 1 < args.size()) {
      in = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out = args[++i];
    } else if (args[i] == "--chunk-rows" && i + 1 < args.size()) {
      chunk_rows = static_cast<std::uint32_t>(
          std::strtoul(args[++i].c_str(), nullptr, 10));
    } else {
      std::cerr << "convert: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (in.empty() || out.empty() || chunk_rows == 0) return usage();

  if (trace::is_columnar_file(in)) {
    const trace::TraceDatabase db = trace::load_columnar(in);
    trace::save_database(db, out);
    const trace::ChunkReader reader(in);
    std::cout << "converted columnar -> CSV: " << db.servers().size()
              << " servers, " << db.tickets().size() << " tickets to " << out
              << "\n"
              << columnar_stats(reader.report());
    return 0;
  }
  if (std::filesystem::is_directory(in)) {
    const trace::TraceDatabase db = trace::load_database(in);
    const trace::FileReport report = trace::save_columnar(db, out, chunk_rows);
    std::cout << "converted CSV -> columnar: " << db.servers().size()
              << " servers, " << db.tickets().size() << " tickets to " << out
              << "\n"
              << columnar_stats(report);
    return 0;
  }
  std::cerr << "convert: '" << in
            << "' is neither a CSV trace directory nor a columnar file\n";
  return 1;
}

// Footer unreadable: the file is truncated or crash-damaged. Print what a
// salvage scan can still see and point at the recovery path instead of
// leaving the user with a bare parse error.
int info_salvage_diagnostic(const std::string& path,
                            const std::string& error) {
  std::cerr << "error: " << error << "\n";
  const trace::SalvageScan scan = trace::scan_columnar_salvage(path);
  std::cout << scan.to_string();
  if (scan.header_ok && scan.total_chunks() > 0) {
    std::cout << "recover the valid prefix with: fa_trace recover " << path
              << " RECOVERED.fac\n";
  }
  return 3;
}

int cmd_info(const std::string& path) {
  std::unique_ptr<trace::ChunkReader> opened;
  try {
    opened = std::make_unique<trace::ChunkReader>(path);
  } catch (const io::IoError&) {
    throw;  // unreadable at the filesystem level: nothing to salvage
  } catch (const Error& e) {
    if (!trace::is_columnar_file(path)) throw;
    return info_salvage_diagnostic(path, e.what());
  }
  const trace::ChunkReader& reader = *opened;
  const auto window_line = [](const char* name, const ObservationWindow& w) {
    std::cout << "  " << name << " [" << w.begin << ", " << w.end << ")\n";
  };
  std::cout << path << ": columnar trace v" << trace::kColumnarVersion
            << (reader.mmapped() ? ", mmap" : ", buffered")
            << "\nwindows (minutes since trace epoch):\n";
  window_line("ticket    ", reader.window());
  window_line("monitoring", reader.monitoring());
  window_line("on/off    ", reader.onoff_tracking());
  std::cout << "next incident id: " << reader.next_incident() << "\n";

  for (trace::columnar::Table t : trace::columnar::kAllTables) {
    const auto& schema = trace::columnar::table_schema(t);
    std::cout << trace::columnar::table_name(t) << ": "
              << reader.row_count(t) << " rows in " << reader.chunk_count(t)
              << " chunk(s)\n";
    for (std::size_t i = 0; i < reader.chunk_count(t); ++i) {
      const trace::columnar::ChunkInfo& info = reader.chunk_info(t, i);
      std::cout << "  chunk " << i << ": offset " << info.offset << ", "
                << info.size << " B, " << info.rows << " rows, checksum "
                << std::hex << std::setfill('0') << std::setw(16)
                << info.checksum << std::dec << std::setfill(' ') << "\n";
      std::string stats;
      for (std::size_t c = 0; c < schema.size(); ++c) {
        const trace::columnar::ColumnBlockInfo& block = info.columns[c];
        if (!block.stats.has_minmax && block.extra == 0) continue;
        if (!stats.empty()) stats += ", ";
        stats += std::string(schema[c].name);
        if (block.stats.has_minmax) {
          stats += " [" + std::to_string(block.stats.min) + ", " +
                   std::to_string(block.stats.max) + "]";
        } else {
          stats += " dict=" + std::to_string(block.extra);
        }
      }
      if (!stats.empty()) std::cout << "    " << stats << "\n";
    }
  }
  return 0;
}

int cmd_recover(const std::vector<std::string>& args) {
  std::string in, out, report_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--report" && i + 1 < args.size()) {
      report_path = args[++i];
    } else if (in.empty() && !args[i].starts_with("--")) {
      in = args[i];
    } else if (out.empty() && !args[i].starts_with("--")) {
      out = args[i];
    } else {
      std::cerr << "recover: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (in.empty() || out.empty()) return usage();

  const trace::SalvageReport report = trace::recover_columnar(in, out);
  std::cout << report.to_string() << "wrote recovered trace to " << out
            << "\n";
  if (!report_path.empty()) write_text_file(report_path, report.to_string());
  return 0;
}

// Shared flag state of the streaming-detection verbs (watch / serve).
struct StreamFlags {
  std::vector<std::pair<double, double>> shifts;  // (day-of-stream, factor)
  double cutoff_days = 0.0;
  double threshold_nats = 0.0;   // 0 = detector default
  double warmup_weeks = 0.0;     // 0 = detector default
  std::string ooo;               // "", "reject", "buffer", "drop"
  double slack_minutes = 0.0;
  bool score = false;
  double horizon_days = 84.0;
  double stats_every_days = 0.0;  // heartbeat cadence; 0 = no heartbeats
  std::string stats_out;          // heartbeat JSONL sink ("" = stdout)
};

// Parses one --shift D:F operand ("rate x F from stream day D on").
bool parse_shift(const std::string& spec,
                 std::vector<std::pair<double, double>>& out) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= spec.size()) {
    std::cerr << "--shift expects DAY:FACTOR, got '" << spec << "'\n";
    return false;
  }
  out.emplace_back(std::atof(spec.substr(0, colon).c_str()),
                   std::atof(spec.c_str() + colon + 1));
  return true;
}

// Consumes a stream flag at args[i] if it is one; returns true and advances
// `i` past any operand. `ok` turns false on a malformed operand.
bool consume_stream_flag(const std::vector<std::string>& args, std::size_t& i,
                         StreamFlags& flags, bool& ok) {
  const std::string& arg = args[i];
  const bool has_operand = i + 1 < args.size();
  if (arg == "--shift" && has_operand) {
    ok = parse_shift(args[++i], flags.shifts) && ok;
  } else if (arg == "--cutoff" && has_operand) {
    flags.cutoff_days = std::atof(args[++i].c_str());
  } else if (arg == "--threshold" && has_operand) {
    flags.threshold_nats = std::atof(args[++i].c_str());
  } else if (arg == "--warmup-weeks" && has_operand) {
    flags.warmup_weeks = std::atof(args[++i].c_str());
  } else if (arg == "--ooo" && has_operand) {
    flags.ooo = args[++i];
  } else if (arg == "--slack" && has_operand) {
    flags.slack_minutes = std::atof(args[++i].c_str());
  } else if (arg == "--score") {
    flags.score = true;
  } else if (arg == "--horizon" && has_operand) {
    flags.horizon_days = std::atof(args[++i].c_str());
  } else if (arg == "--stats-every" && has_operand) {
    flags.stats_every_days = std::atof(args[++i].c_str());
  } else if (arg == "--stats-out" && has_operand) {
    flags.stats_out = args[++i];
  } else {
    return false;
  }
  return true;
}

sim::StreamScenario build_scenario(const StreamFlags& flags,
                                   const ObservationWindow& window) {
  sim::StreamScenario scenario;
  for (const auto& [day, factor] : flags.shifts) {
    scenario.shifts.push_back({window.begin + from_days(day), factor});
  }
  if (flags.cutoff_days > 0.0) {
    scenario.cutoff = window.begin + from_days(flags.cutoff_days);
  }
  return scenario;
}

// Returns false (after reporting) on an unknown --ooo policy.
bool build_detector_options(const StreamFlags& flags,
                            detect::DetectorOptions& options) {
  if (flags.threshold_nats > 0.0) {
    options.cusum_threshold = flags.threshold_nats;
  }
  if (flags.warmup_weeks > 0.0) {
    options.warmup =
        static_cast<Duration>(flags.warmup_weeks * kMinutesPerWeek);
  }
  if (flags.ooo == "buffer") {
    options.out_of_order = detect::OutOfOrderPolicy::kBuffer;
    options.reorder_slack =
        flags.slack_minutes > 0.0
            ? static_cast<Duration>(flags.slack_minutes)
            : kMinutesPerDay;
  } else if (flags.ooo == "drop") {
    options.out_of_order = detect::OutOfOrderPolicy::kDrop;
  } else if (!flags.ooo.empty() && flags.ooo != "reject") {
    std::cerr << "unknown --ooo policy '" << flags.ooo
              << "' (expected reject, buffer or drop)\n";
    return false;
  }
  return true;
}

int cmd_watch(const std::vector<std::string>& args) {
  std::string dir, alerts_out;
  double scale = 0.5;
  std::uint64_t seed = 0;
  bool have_seed = false;
  StreamFlags flags;
  bool flags_ok = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (consume_stream_flag(args, i, flags, flags_ok)) {
      continue;
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
      have_seed = true;
    } else if (args[i] == "--alerts-out" && i + 1 < args.size()) {
      alerts_out = args[++i];
    } else if (dir.empty() && !args[i].starts_with("--")) {
      dir = args[i];
    } else {
      std::cerr << "watch: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (!flags_ok || scale <= 0.0) return usage();
  if (!flags.stats_out.empty() && flags.stats_every_days <= 0.0) {
    std::cerr << "watch: --stats-out needs --stats-every D\n";
    return usage();
  }

  std::shared_ptr<const trace::TraceDatabase> db;
  if (dir.empty()) {
    auto config = sim::SimulationConfig::paper_defaults().scaled(scale);
    if (have_seed) config.seed = seed;
    db = analysis::ArtifactCache::global().database(config);
  } else {
    db = std::make_shared<const trace::TraceDatabase>(
        trace::is_columnar_file(dir) ? trace::load_columnar(dir)
                                     : trace::load_database(dir));
  }

  const sim::StreamScenario scenario = build_scenario(flags, db->window());
  detect::DetectorOptions options;
  options.tenant = "watch";
  if (!build_detector_options(flags, options)) return usage();

  detect::OnlineDetector detector(std::move(options));
  detector.set_alert_callback([](const detect::Alert& alert) {
    std::cout << detect::alert_line(alert) << "\n";
  });

  // Optional health heartbeats: wrap the detector in a HealthMonitor and
  // stream each JSONL line as soon as the boundary is crossed (live, not
  // batched — the point of a heartbeat).
  std::ofstream stats_file;
  std::ostream* stats_stream = nullptr;
  if (flags.stats_every_days > 0.0) {
    if (flags.stats_out.empty()) {
      stats_stream = &std::cout;
    } else {
      stats_file.open(flags.stats_out);
      require(stats_file.good(),
              "cannot open " + flags.stats_out + " for writing");
      stats_stream = &stats_file;
    }
  }
  trace::StreamSink* sink = &detector;
  std::unique_ptr<detect::HealthMonitor> monitor;
  if (stats_stream) {
    detect::HealthOptions health;
    health.every = from_days(flags.stats_every_days);
    monitor = std::make_unique<detect::HealthMonitor>(
        detector, detector, nullptr, health, "watch",
        [stats_stream](const detect::Heartbeat& hb) {
          (*stats_stream) << hb.line << "\n" << std::flush;
        });
    sink = monitor.get();
  }

  sim::emit_stream(*db, scenario, *sink);
  const detect::DetectorReport& report = detector.report();

  std::cout << "\n" << report.to_string();
  if (!alerts_out.empty()) write_text_file(alerts_out, report.alert_log());
  if (flags.score) {
    detect::ScoreOptions score_options;
    score_options.match_horizon = from_days(flags.horizon_days);
    const detect::DetectionScore score = detect::score_alerts(
        scenario.change_points(), report.alerts, score_options);
    std::cout << "score: " << score.to_string() << "\n";
  }
  return 0;
}

// Parses one --throttle T:MIN operand ("tenant T is a slow consumer that
// takes MIN sim-minutes per event").
bool parse_throttle(const std::string& spec,
                    std::vector<std::pair<int, double>>& out) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    std::cerr << "--throttle expects TENANT:MINUTES, got '" << spec << "'\n";
    return false;
  }
  out.emplace_back(std::atoi(spec.substr(0, colon).c_str()),
                   std::atof(spec.c_str() + colon + 1));
  return true;
}

int cmd_serve(const std::vector<std::string>& args) {
  int tenants = 4;
  double scale = 0.3;
  std::uint64_t base_seed = 1;
  std::vector<std::pair<int, double>> throttles;  // (tenant index, minutes)
  StreamFlags flags;
  bool flags_ok = true;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (consume_stream_flag(args, i, flags, flags_ok)) {
      continue;
    } else if (args[i] == "--tenants" && i + 1 < args.size()) {
      tenants = std::atoi(args[++i].c_str());
    } else if (args[i] == "--scale" && i + 1 < args.size()) {
      scale = std::atof(args[++i].c_str());
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      base_seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--throttle" && i + 1 < args.size()) {
      flags_ok = parse_throttle(args[++i], throttles) && flags_ok;
    } else {
      std::cerr << "serve: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (!flags_ok || tenants <= 0 || scale <= 0.0) return usage();
  if (!flags.stats_out.empty() && flags.stats_every_days <= 0.0) {
    std::cerr << "serve: --stats-out needs --stats-every D\n";
    return usage();
  }
  for (const auto& [index, minutes] : throttles) {
    if (index < 0 || index >= tenants || minutes < 0.0) {
      std::cerr << "serve: --throttle tenant " << index
                << " out of range (0.." << tenants - 1 << ")\n";
      return usage();
    }
  }

  detect::DetectorOptions options;
  if (!build_detector_options(flags, options)) return usage();
  const sim::StreamScenario scenario =
      build_scenario(flags, ticket_window());

  std::vector<detect::TenantSpec> specs(static_cast<std::size_t>(tenants));
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "tenant-" + std::to_string(i);
    specs[i].config = sim::SimulationConfig::paper_defaults().scaled(scale);
    specs[i].config.seed = base_seed + i;
    specs[i].scenario = scenario;
    specs[i].detector = options;
  }
  for (const auto& [index, minutes] : throttles) {
    specs[static_cast<std::size_t>(index)].throttle.service_minutes =
        static_cast<Duration>(minutes);
  }
  detect::ScoreOptions score_options;
  score_options.match_horizon = from_days(flags.horizon_days);
  detect::HealthOptions health;
  if (flags.stats_every_days > 0.0) {
    health.every = from_days(flags.stats_every_days);
  }
  const std::vector<detect::TenantResult> results =
      detect::serve_tenants(specs, score_options, health);

  analysis::TextTable table({"tenant", "events", "crashes", "usage", "alerts",
                             "precision", "recall", "latency_d"});
  std::uint64_t total_events = 0, total_alerts = 0;
  for (const detect::TenantResult& r : results) {
    total_events += r.report.events;
    total_alerts += r.report.alerts.size();
    const bool scored = !r.change_points.empty();
    table.add_row(
        {r.name, std::to_string(r.report.events),
         std::to_string(r.report.crash_tickets),
         std::to_string(r.report.usage_samples),
         std::to_string(r.report.alerts.size()),
         scored ? format_double(r.score.precision(), 3) : std::string("-"),
         scored ? format_double(r.score.recall(), 3) : std::string("-"),
         scored ? format_double(to_days(r.score.median_latency()), 2)
                : std::string("-")});
  }
  std::cout << table.to_string() << "served " << results.size()
            << " tenant streams: " << total_events << " events, "
            << total_alerts << " alerts\n";

  // Backpressure accounting for throttled tenants only, so the default
  // serve output (and its goldens) is unchanged.
  for (const detect::TenantResult& r : results) {
    const detect::BackpressureStats& bp = r.backpressure;
    if (bp.events == 0) continue;
    std::cout << r.name << " backpressure: " << bp.delayed << "/" << bp.events
              << " events delayed, max queue " << bp.max_queue_depth
              << ", max wait " << bp.max_wait << "m, p99 wait "
              << format_double(bp.wait_minutes.quantile(0.99), 0) << "m\n";
  }

  if (health.every > 0) {
    // Merge per-tenant heartbeat streams into one JSONL feed ordered by
    // (sim-time, tenant slot, seq) — deterministic at any --threads.
    struct Entry {
      TimePoint at;
      std::size_t slot;
      std::uint64_t seq;
      const std::string* line;
    };
    std::vector<Entry> entries;
    for (std::size_t i = 0; i < results.size(); ++i) {
      for (const detect::Heartbeat& hb : results[i].heartbeats) {
        entries.push_back({hb.at, i, hb.seq, &hb.line});
      }
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return std::tie(a.at, a.slot, a.seq) <
                       std::tie(b.at, b.slot, b.seq);
              });
    std::string jsonl;
    for (const Entry& e : entries) {
      jsonl += *e.line;
      jsonl += '\n';
    }
    if (flags.stats_out.empty()) {
      std::cout << jsonl;
    } else {
      write_text_file(flags.stats_out, jsonl);
      std::cout << "wrote " << entries.size() << " heartbeats to "
                << flags.stats_out << "\n";
    }
  }
  return 0;
}

// `fa_trace top`: one-shot health dashboard over a --stats-out JSONL file.
// Keeps the newest heartbeat per tenant (tenants in first-seen order) and
// renders the per-tenant health table plus any strata that fired alerts.
int cmd_top(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::cerr << "top: cannot open " << path << "\n";
    return 3;
  }
  std::vector<std::string> order;                // tenants, first-seen order
  std::map<std::string, std::string> latest;     // tenant -> newest line
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::string tenant;
    if (!detect::heartbeat_string(line, "tenant", tenant)) {
      std::cerr << "top: line without a tenant field in " << path << "\n";
      return 1;
    }
    if (!latest.contains(tenant)) order.push_back(tenant);
    latest[tenant] = line;  // lines are time-ordered; last one wins
  }
  if (order.empty()) {
    std::cerr << "top: no heartbeats in " << path << "\n";
    return 1;
  }

  const auto count = [](std::string_view scope, std::string_view key) {
    double v = 0.0;
    detect::heartbeat_number(scope, key, v);
    return std::to_string(static_cast<long long>(v));
  };
  const auto quantile = [](std::string_view scope, std::string_view family,
                           std::string_view key) {
    double v = 0.0;
    detect::heartbeat_number(detect::heartbeat_object(scope, family), key, v);
    return format_double(v, 0);
  };

  analysis::TextTable table({"tenant", "time", "events", "alerts", "lag_p99m",
                             "wm_p99m", "ooo", "qdepth", "delayed"});
  analysis::TextTable strata({"tenant", "stratum", "crashes", "rate_wk",
                              "alerts", "armed"});
  std::size_t alerting = 0;
  for (const std::string& tenant : order) {
    const std::string_view det = detect::heartbeat_object(latest[tenant], "det");
    if (det.empty()) {
      std::cerr << "top: heartbeat for " << tenant << " has no det object\n";
      return 1;
    }
    std::string when;
    detect::heartbeat_string(det, "time", when);
    const std::string_view queue = detect::heartbeat_object(det, "queue");
    table.add_row({tenant, when, count(det, "events"), count(det, "alerts"),
                   quantile(det, "event_lag_minutes", "p99"),
                   quantile(det, "watermark_lag_minutes", "p99"),
                   count(det, "ooo_pending"), count(queue, "depth"),
                   count(queue, "delayed")});
    for (const std::string_view item :
         detect::heartbeat_items(detect::heartbeat_array(det, "strata"))) {
      double stratum_alerts = 0.0;
      detect::heartbeat_number(item, "alerts", stratum_alerts);
      if (stratum_alerts <= 0.0) continue;
      ++alerting;
      std::string name;
      detect::heartbeat_string(item, "name", name);
      double rate = 0.0;
      detect::heartbeat_number(item, "window_rate", rate);
      strata.add_row({tenant, name, count(item, "crashes"),
                      format_double(rate, 4), count(item, "alerts"),
                      item.find("\"armed\": true") != std::string_view::npos
                          ? "yes"
                          : "no"});
    }
  }
  std::cout << table.to_string();
  if (alerting > 0) {
    std::cout << "\nstrata with alerts:\n" << strata.to_string();
  } else {
    std::cout << "no stratum-level alerts\n";
  }
  return 0;
}

int cmd_classify(const std::string& dir) {
  const auto ctx = loaded_context(dir);
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto& result = pipeline.classification();

  analysis::TextTable table({"class", "tickets", "share"});
  std::array<int, trace::kFailureClassCount> counts{};
  for (const trace::Ticket* t : pipeline.failures()) {
    ++counts[static_cast<std::size_t>(pipeline.class_of(*t))];
  }
  const auto total = static_cast<double>(pipeline.failures().size());
  for (trace::FailureClass c : trace::kAllFailureClasses) {
    const int n = counts[static_cast<std::size_t>(c)];
    table.add_row({std::string(trace::to_string(c)), std::to_string(n),
                   format_double(100.0 * n / total, 1) + "%"});
  }
  std::cout << table.to_string() << "\naccuracy vs trace labels: "
            << format_double(100.0 * result.accuracy, 1) << "%\n";
  return 0;
}

int cmd_fit(const std::string& dir, const std::string& metric,
            const std::string& type_name) {
  const auto ctx = loaded_context(dir);
  const trace::TraceDatabase& db = *ctx.db;
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto type = trace::machine_type_from_string(
      type_name == "pm" ? "PM" : type_name == "vm" ? "VM" : type_name);
  const analysis::Scope scope{type, std::nullopt};

  std::vector<double> sample;
  if (metric == "interfailure") {
    sample = analysis::per_server_interfailure_days(db, pipeline.failures(),
                                                    scope);
  } else if (metric == "repair") {
    sample = analysis::repair_hours(db, pipeline.failures(), scope);
  } else {
    return usage();
  }
  require(sample.size() >= 30, "fit: sample too small (" +
                                   std::to_string(sample.size()) +
                                   " observations)");

  analysis::TextTable table({"family", "parameters", "logL", "AIC", "KS"});
  for (const auto& fit : stats::fit_candidates(sample)) {
    table.add_row({fit.dist->name(), fit.dist->describe(),
                   format_double(fit.log_likelihood, 1),
                   format_double(fit.aic, 1),
                   format_double(fit.ks_statistic, 4)});
  }
  std::cout << metric << " sample (" << type_name << "): " << sample.size()
            << " observations\n"
            << table.to_string();
  return 0;
}

int cmd_transitions(const std::string& dir) {
  const auto ctx = loaded_context(dir);
  const trace::TraceDatabase& db = *ctx.db;
  const analysis::AnalysisPipeline& pipeline = *ctx.pipeline;
  const auto result = analysis::analyze_transitions(
      db, pipeline.failures(), pipeline.class_lookup(), kMinutesPerWeek);

  analysis::TextTable table({"from \\ to", "HW", "Net", "Power", "Reboot",
                             "SW", "Other", "P(follow-up)"});
  for (trace::FailureClass from : trace::kAllFailureClasses) {
    const auto i = static_cast<std::size_t>(from);
    std::vector<std::string> row = {std::string(trace::to_string(from))};
    for (std::size_t j = 0; j < trace::kFailureClassCount; ++j) {
      row.push_back(format_double(result.probability[i][j], 2));
    }
    row.push_back(format_double(result.followup_probability[i], 3));
    table.add_row(std::move(row));
  }
  std::cout << "same-server class transitions within a week\n"
            << table.to_string();
  return 0;
}

int cmd_sanitize(const std::vector<std::string>& args) {
  std::string dir, counts_csv, defects_csv;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--counts-csv" && i + 1 < args.size()) {
      counts_csv = args[++i];
    } else if (args[i] == "--defects-csv" && i + 1 < args.size()) {
      defects_csv = args[++i];
    } else if (dir.empty() && !args[i].starts_with("--")) {
      dir = args[i];
    } else {
      std::cerr << "sanitize: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (dir.empty()) return usage();

  const auto sanitized = trace::sanitize_database(dir);
  std::cout << sanitized.report.to_string()
            << "kept: " << sanitized.db.servers().size() << " servers, "
            << sanitized.db.tickets().size() << " tickets\n";
  if (!counts_csv.empty()) {
    write_text_file(counts_csv, sanitized.report.counts_csv());
  }
  if (!defects_csv.empty()) {
    write_text_file(defects_csv, sanitized.report.defects_csv());
  }
  return 0;
}

// Parses "class=rate,class=rate,..." into `mix`; returns false (after
// printing the offending token) on malformed input.
bool parse_mix(const std::string& spec, inject::DefectMix& mix) {
  for (const std::string& entry : split(spec, ',')) {
    const auto eq = entry.find('=');
    if (eq == std::string::npos) {
      std::cerr << "corrupt: --mix entry '" << entry
                << "' is not class=rate\n";
      return false;
    }
    const std::string name = entry.substr(0, eq);
    bool known = false;
    for (trace::DefectClass cls : trace::kAllDefectClasses) {
      if (trace::to_string(cls) == name) {
        mix.set_rate(cls, std::atof(entry.c_str() + eq + 1));
        known = true;
        break;
      }
    }
    if (!known) {
      std::cerr << "corrupt: unknown defect class '" << name << "'\n";
      return false;
    }
  }
  return true;
}

int cmd_corrupt(const std::vector<std::string>& args) {
  std::string in_dir, out_dir, mix_spec, counts_csv;
  std::uint64_t seed = 1;
  double rate = 0.0;
  bool have_rate = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--in" && i + 1 < args.size()) {
      in_dir = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      seed = std::strtoull(args[++i].c_str(), nullptr, 10);
    } else if (args[i] == "--rate" && i + 1 < args.size()) {
      rate = std::atof(args[++i].c_str());
      have_rate = true;
    } else if (args[i] == "--mix" && i + 1 < args.size()) {
      mix_spec = args[++i];
    } else if (args[i] == "--counts-csv" && i + 1 < args.size()) {
      counts_csv = args[++i];
    } else {
      std::cerr << "corrupt: unknown argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (in_dir.empty() || out_dir.empty()) return usage();
  if (!have_rate && mix_spec.empty()) {
    std::cerr << "corrupt: nothing to inject (give --rate and/or --mix)\n";
    return usage();
  }
  if (have_rate && (rate < 0.0 || rate > 1.0)) return usage();

  inject::DefectMix mix =
      have_rate ? inject::DefectMix::uniform(rate) : inject::DefectMix{};
  if (!mix_spec.empty() && !parse_mix(mix_spec, mix)) return usage();

  const auto report = inject::corrupt_database(in_dir, out_dir, seed, mix);
  std::cout << report.to_string()
            << "wrote corrupted export to " << out_dir << "\n";
  if (!counts_csv.empty()) write_text_file(counts_csv, report.counts_csv());
  return 0;
}

// Dispatches a parsed command line (global flags already stripped).
int run_command(const std::vector<std::string>& args) {
  const std::string& command = args[0];
  if (command == "simulate") {
    return cmd_simulate({args.begin() + 1, args.end()});
  }
  if (command == "report") {
    std::vector<std::string> rest(args.begin() + 1, args.end());
    bool lenient = false;
    double scale = 0.1;
    std::string dir;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] == "--lenient") {
        lenient = true;
      } else if (rest[i] == "--scale" && i + 1 < rest.size()) {
        scale = std::atof(rest[++i].c_str());
      } else if (dir.empty() && !rest[i].starts_with("--")) {
        dir = rest[i];
      } else {
        std::cerr << "report: unknown argument '" << rest[i] << "'\n";
        return usage();
      }
    }
    if (scale <= 0.0) return usage();
    return cmd_report(dir, lenient, scale);
  }
  if (command == "watch") {
    return cmd_watch({args.begin() + 1, args.end()});
  }
  if (command == "serve") {
    return cmd_serve({args.begin() + 1, args.end()});
  }
  if (command == "top" && args.size() == 2) {
    return cmd_top(args[1]);
  }
  if (command == "convert") {
    return cmd_convert({args.begin() + 1, args.end()});
  }
  if (command == "info" && args.size() == 2) {
    return cmd_info(args[1]);
  }
  if (command == "recover" && args.size() >= 3) {
    return cmd_recover({args.begin() + 1, args.end()});
  }
  if (command == "classify" && args.size() == 2) {
    return cmd_classify(args[1]);
  }
  if (command == "fit" && args.size() == 4) {
    return cmd_fit(args[1], args[2], args[3]);
  }
  if (command == "transitions" && args.size() == 2) {
    return cmd_transitions(args[1]);
  }
  if (command == "sanitize") {
    return cmd_sanitize({args.begin() + 1, args.end()});
  }
  if (command == "corrupt") {
    return cmd_corrupt({args.begin() + 1, args.end()});
  }
  if (command == "classify" || command == "fit" ||
      command == "transitions" || command == "info" ||
      command == "recover" || command == "top") {
    return usage();  // known command, wrong arity
  }
  return unknown_command(command);
}

// Amdahl sweep behind `fa_trace profile`: re-runs the profiled command at
// 1, 2, 4 and 8 worker threads (cold artifact cache, fresh registry, stdout
// suppressed), then least-squares-fits the serial fraction of every stage
// span recorded in all four runs (stats::amdahl_serial_fraction). A
// fraction near 1 means the stage does not scale with threads.
void print_amdahl_sweep(const std::vector<std::string>& args) {
  constexpr std::array<int, 4> kThreads = {1, 2, 4, 8};
  std::map<std::string, std::array<double, kThreads.size()>> totals;
  std::map<std::string, std::size_t> seen;
  const std::size_t previous = fa::ThreadPool::default_thread_count();
  for (std::size_t ti = 0; ti < kThreads.size(); ++ti) {
    fa::analysis::ArtifactCache::global().clear();
    fa::obs::MetricsRegistry::global().reset();
    fa::ThreadPool::set_default_thread_count(
        static_cast<std::size_t>(kThreads[ti]));
    std::ostringstream discard;
    std::streambuf* saved = std::cout.rdbuf(discard.rdbuf());
    bool ok = true;
    try {
      ok = run_command(args) == 0;
    } catch (const std::exception&) {
      ok = false;
    }
    std::cout.rdbuf(saved);
    if (!ok) {
      // The instrumented run succeeded, so a sweep failure (e.g. an output
      // path that cannot be rewritten) only skips the fit.
      fa::ThreadPool::set_default_thread_count(previous);
      std::cout << "amdahl sweep skipped: command failed at "
                << kThreads[ti] << " threads\n";
      return;
    }
    for (const auto& span :
         fa::obs::MetricsRegistry::global().snapshot().spans) {
      totals[span.name][ti] = span.total_ms;
      ++seen[span.name];
    }
  }
  fa::ThreadPool::set_default_thread_count(previous);

  analysis::TextTable table(
      {"stage", "1t ms", "2t ms", "4t ms", "8t ms", "serial fraction"});
  for (const auto& [name, ms] : totals) {
    if (seen[name] != kThreads.size()) continue;  // not present in every run
    std::array<std::string, kThreads.size()> cells;
    for (std::size_t i = 0; i < ms.size(); ++i) {
      cells[i] = format_double(ms[i], 1);
    }
    const double s = stats::amdahl_serial_fraction(
        kThreads, std::span<const double>(ms));
    table.add_row({name, cells[0], cells[1], cells[2], cells[3],
                   format_double(s, 2)});
  }
  std::cout << "\nthread scaling (1/2/4/8 worker threads, Amdahl fit):\n"
            << table.to_string();
  if (fa::ThreadPool::hardware_threads() <= 1) {
    std::cout << "note: this host has 1 hardware core; the sweep "
                 "oversubscribes it and the fit is not meaningful\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  std::string metrics_path, trace_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-cache") {
      fa::analysis::ArtifactCache::global().set_enabled(false);
    } else if (arg == "--no-obs") {
      fa::obs::set_enabled(false);
    } else if (arg == "--threads" && i + 1 < argc) {
      const std::string value = argv[++i];
      char* end = nullptr;
      const unsigned long n = std::strtoul(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        std::cerr << "invalid --threads value '" << value
                  << "' (expected a non-negative integer)\n";
        return 2;
      }
      fa::ThreadPool::set_default_thread_count(static_cast<std::size_t>(n));
    } else if (arg == "--metrics" && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg.rfind("--metrics=", 0) == 0) {
      metrics_path = arg.substr(10);
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg.rfind("--trace-out=", 0) == 0) {
      trace_path = arg.substr(12);
    } else {
      args.push_back(arg);
    }
  }
  bool profile = false;
  if (!args.empty() && args[0] == "profile") {
    profile = true;
    args.erase(args.begin());
    if (metrics_path.empty()) metrics_path = "fa_metrics.json";
    if (trace_path.empty()) trace_path = "fa_trace_events.json";
    if (args.empty()) args.emplace_back("report");
  }
  if (args.empty()) return usage();

  int rc;
  try {
    rc = run_command(args);
  } catch (const fa::io::IoError& e) {
    std::cerr << "i/o error: " << e.what() << "\n";
    rc = 3;
  } catch (const fa::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  } catch (const std::exception& e) {
    std::cerr << "internal error: " << e.what() << "\n";
    rc = 1;
  }

  if (profile) {
    std::cout << "\n"
              << fa::obs::render_table(
                     fa::obs::MetricsRegistry::global().snapshot());
  }
  if (!fa::obs::export_registry_files(metrics_path, trace_path)) {
    if (rc == 0) rc = 1;
  } else if (profile) {
    std::cout << "wrote " << metrics_path << " and " << trace_path
              << " (load the trace in chrome://tracing or ui.perfetto.dev)\n";
  }
  // The sweep runs after the export so the JSON artifacts keep describing
  // the instrumented run, not the last sweep iteration.
  if (profile && rc == 0) print_amdahl_sweep(args);
  return rc;
}
