#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json artifacts (standard library only).

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--report FILE]
                   [--allow-incomparable]

Compares a freshly produced bench artifact (BENCH_perf.json or the
extracted BENCH_detect.json) against a baseline and fails on regressions:

  * booleans        — a correctness flag must not go true -> false
                      (parallel_identical_to_serial, sparse_matches_dense,
                      roundtrip_identical, ...).
  * precision /     — must not drop more than 0.05 below the baseline
    recall            (needs a matching "scale" guard).
  * median_latency_days — must not grow more than 7 days past the baseline.
  * *_ms scalars    — must stay under baseline * 1.6 + 50 ms
                      (needs matching "scale" and hardware guards).
  * events_per_sec  — must stay above baseline / 1.6 (same guards).
  * everything else — informational only (counts, speedups, arrays).

Guards: each JSON object level may carry "scale", "hardware_concurrency"
and "single_core_warning"; nested values override inherited ones. When a
guard differs between the two files, the rules that depend on it are
skipped as incomparable rather than failing — timing on a different
machine is noise, not a regression. A top-level guard mismatch aborts with
exit 2 unless --allow-incomparable is given (then only guard-free rules,
like correctness booleans and detection quality at matching scale, run).

--report FILE writes a markdown table of every compared metric.

Exit status: 0 all rules pass, 1 at least one regression, 2 top-level
guard mismatch without --allow-incomparable.
"""

import argparse
import json
import sys

GUARD_KEYS = ("scale", "hardware_concurrency", "single_core_warning")

# Tolerances. Wall-clock on shared CI runners is noisy; 1.6x + 50 ms slack
# catches order-of-magnitude regressions without flaking on scheduler jitter.
TIME_RATIO = 1.6
TIME_SLACK_MS = 50.0
QUALITY_DROP = 0.05
LATENCY_SLACK_DAYS = 7.0

OK, REGRESSION, SKIPPED, INFO = "ok", "REGRESSION", "skipped", "info"


def walk(node, guards, path, out):
    """Flattens `node` into (path, value, effective-guards) leaf rows."""
    if isinstance(node, dict):
        level = dict(guards)
        for key in GUARD_KEYS:
            if key in node:
                level[key] = node[key]
        for key, value in node.items():
            walk(value, level, f"{path}.{key}" if path else key, out)
    else:
        out[path] = (node, guards)


def fmt(value):
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, list):
        return "[...]"
    return str(value)


class Row:
    def __init__(self, path, base, cur, rule, status, note=""):
        self.path, self.base, self.cur = path, base, cur
        self.rule, self.status, self.note = rule, status, note


def guards_match(base_guards, cur_guards, keys):
    return all(base_guards.get(k) == cur_guards.get(k) for k in keys)


def compare_leaf(path, base, cur, base_guards, cur_guards):
    """Applies the rule for one leaf; returns a Row."""
    key = path.rsplit(".", 1)[-1]

    if isinstance(base, bool) or isinstance(cur, bool):
        if base is True and cur is False:
            return Row(path, base, cur, "must stay true", REGRESSION)
        return Row(path, base, cur, "must stay true", OK)

    if isinstance(base, str) or isinstance(cur, str):
        status = OK if base == cur else INFO
        return Row(path, base, cur, "informational", status)

    if isinstance(base, list) or isinstance(cur, list):
        return Row(path, base, cur, "informational", INFO)

    if key in ("precision", "recall"):
        rule = f">= baseline - {QUALITY_DROP}"
        if not guards_match(base_guards, cur_guards, ("scale",)):
            return Row(path, base, cur, rule, SKIPPED, "scale differs")
        status = OK if cur >= base - QUALITY_DROP else REGRESSION
        return Row(path, base, cur, rule, status)

    if key == "median_latency_days":
        rule = f"<= baseline + {LATENCY_SLACK_DAYS:g}d"
        if not guards_match(base_guards, cur_guards, ("scale",)):
            return Row(path, base, cur, rule, SKIPPED, "scale differs")
        status = OK if cur <= base + LATENCY_SLACK_DAYS else REGRESSION
        return Row(path, base, cur, rule, status)

    if key.endswith("_ms") or key == "events_per_sec":
        faster = key == "events_per_sec"
        rule = (f">= baseline / {TIME_RATIO}" if faster
                else f"<= baseline * {TIME_RATIO} + {TIME_SLACK_MS:g}ms")
        if not guards_match(base_guards, cur_guards, GUARD_KEYS):
            return Row(path, base, cur, rule, SKIPPED, "host/scale differs")
        if faster:
            status = OK if cur >= base / TIME_RATIO else REGRESSION
        else:
            status = OK if cur <= base * TIME_RATIO + TIME_SLACK_MS \
                else REGRESSION
        return Row(path, base, cur, rule, status)

    return Row(path, base, cur, "informational", INFO)


def compare(baseline, current, allow_incomparable):
    """Returns (rows, exit_code)."""
    top_base = {k: baseline[k] for k in GUARD_KEYS if k in baseline}
    top_cur = {k: current[k] for k in GUARD_KEYS if k in current}
    shared = set(top_base) & set(top_cur)
    mismatched = sorted(k for k in shared if top_base[k] != top_cur[k])
    if mismatched and not allow_incomparable:
        for k in mismatched:
            sys.stderr.write(f"incomparable: top-level {k} differs "
                             f"({top_base[k]!r} vs {top_cur[k]!r}); "
                             "re-run with --allow-incomparable to compare "
                             "only host-independent rules\n")
        return [], 2

    base_leaves, cur_leaves = {}, {}
    walk(baseline, {}, "", base_leaves)
    walk(current, {}, "", cur_leaves)

    rows = []
    for path in sorted(set(base_leaves) | set(cur_leaves)):
        if path.rsplit(".", 1)[-1] in GUARD_KEYS:
            continue  # guards are context, not metrics
        if path not in cur_leaves:
            rows.append(Row(path, base_leaves[path][0], None,
                            "informational", INFO, "missing in current"))
            continue
        if path not in base_leaves:
            rows.append(Row(path, None, cur_leaves[path][0],
                            "informational", INFO, "new metric"))
            continue
        base, base_guards = base_leaves[path]
        cur, cur_guards = cur_leaves[path]
        rows.append(compare_leaf(path, base, cur, base_guards, cur_guards))

    code = 1 if any(r.status == REGRESSION for r in rows) else 0
    return rows, code


def markdown_report(rows, baseline_path, current_path):
    lines = ["# Bench comparison", "",
             f"baseline: `{baseline_path}`  ", f"current: `{current_path}`",
             "", "| metric | baseline | current | delta | rule | status |",
             "|---|---|---|---|---|---|"]
    for r in rows:
        delta = ""
        if isinstance(r.base, (int, float)) and \
                isinstance(r.cur, (int, float)) and \
                not isinstance(r.base, bool) and not isinstance(r.cur, bool):
            delta = f"{r.cur - r.base:+g}"
        status = r.status if not r.note else f"{r.status} ({r.note})"
        lines.append(f"| {r.path} | {fmt(r.base)} | {fmt(r.cur)} | {delta} "
                     f"| {r.rule} | {status} |")
    regressions = sum(r.status == REGRESSION for r in rows)
    checked = sum(r.status in (OK, REGRESSION) and r.rule != "informational"
                  for r in rows)
    lines += ["", f"{checked} rules checked, {regressions} regression(s)."]
    return "\n".join(lines) + "\n"


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.stderr.write(f"{path}: {e}\n")
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--report", metavar="FILE",
                        help="write a markdown comparison table to FILE")
    parser.add_argument("--allow-incomparable", action="store_true",
                        help="do not abort on a top-level guard mismatch; "
                             "skip host-dependent rules instead")
    args = parser.parse_args()

    rows, code = compare(load(args.baseline), load(args.current),
                         args.allow_incomparable)
    if code == 2:
        return 2

    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            f.write(markdown_report(rows, args.baseline, args.current))

    for r in rows:
        if r.status == REGRESSION:
            sys.stderr.write(f"REGRESSION {r.path}: baseline {fmt(r.base)} "
                             f"-> current {fmt(r.cur)} (rule: {r.rule})\n")
    skipped = sum(r.status == SKIPPED for r in rows)
    checked = sum(r.status in (OK, REGRESSION) and r.rule != "informational"
                  for r in rows)
    regressions = sum(r.status == REGRESSION for r in rows)
    print(f"bench_compare: {checked} rules checked, {skipped} skipped, "
          f"{regressions} regression(s)")
    return code


if __name__ == "__main__":
    sys.exit(main())
