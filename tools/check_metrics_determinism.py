#!/usr/bin/env python3
"""End-to-end determinism check for the observability export.

Runs the fa_trace CLI report on the default simulation at --threads 1 and
--threads 8, then asserts the "deterministic" sections of the two metrics
snapshots are identical. Per-worker timing data is allowed (and expected)
to differ; the deterministic counters and histogram bucket counts are not.

Usage: check_metrics_determinism.py <fa_trace_binary> <workdir>
"""

import json
import os
import subprocess
import sys


def run(binary, threads, metrics_path):
    cmd = [binary, "--threads", str(threads), "--metrics", metrics_path,
           "report", "--scale", "0.05"]
    result = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    if result.returncode != 0:
        sys.stderr.write(f"{' '.join(cmd)} exited {result.returncode}\n")
        sys.exit(1)
    with open(metrics_path, encoding="utf-8") as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        sys.stderr.write(__doc__)
        return 2
    binary, workdir = sys.argv[1], sys.argv[2]
    os.makedirs(workdir, exist_ok=True)

    serial = run(binary, 1, os.path.join(workdir, "metrics_t1.json"))
    parallel = run(binary, 8, os.path.join(workdir, "metrics_t8.json"))

    det_serial = serial["deterministic"]
    det_parallel = parallel["deterministic"]
    if not det_serial.get("counters"):
        sys.stderr.write("deterministic section is empty — the report "
                         "pipeline recorded no counters\n")
        return 1
    if det_serial != det_parallel:
        for key in sorted(set(det_serial) | set(det_parallel)):
            sa = {json.dumps(x, sort_keys=True)
                  for x in det_serial.get(key, [])}
            pa = {json.dumps(x, sort_keys=True)
                  for x in det_parallel.get(key, [])}
            for entry in sorted(sa ^ pa):
                side = "threads=1" if entry in sa else "threads=8"
                sys.stderr.write(f"only at {side} in {key}: {entry}\n")
        sys.stderr.write("deterministic sections differ between "
                         "--threads 1 and --threads 8\n")
        return 1
    print(f"deterministic sections identical across thread counts "
          f"({len(det_serial['counters'])} counters, "
          f"{len(det_serial['histograms'])} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
