#include "src/text/ticket_text.h"

#include <string>

#include <gtest/gtest.h>

#include "src/text/vocabulary.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/strings.h"

namespace fa::text {
namespace {

bool contains_any(const std::string& text,
                  std::span<const std::string_view> pool) {
  for (std::string_view w : pool) {
    if (text.find(w) != std::string::npos) return true;
  }
  return false;
}

TEST(TicketText, CrashDescriptionAlwaysCarriesSymptom) {
  Rng rng(1);
  TextStyleOptions options;
  for (int i = 0; i < 50; ++i) {
    const auto t = generate_crash_text(trace::FailureClass::kHardware,
                                       options, rng);
    EXPECT_TRUE(contains_any(to_lower(t.description), crash_symptoms()))
        << t.description;
  }
}

TEST(TicketText, ClearTicketsCarryClassSignature) {
  Rng rng(2);
  TextStyleOptions options;
  options.confusion_probability = 0.0;
  for (trace::FailureClass c : trace::kClassifiedFailureClasses) {
    const auto t = generate_crash_text(c, options, rng);
    const std::string all = to_lower(t.description + " " + t.resolution);
    EXPECT_TRUE(contains_any(all, signature_words(c)))
        << to_string(c) << ": " << all;
  }
}

TEST(TicketText, OtherTicketsAvoidRealClassResolutions) {
  Rng rng(3);
  TextStyleOptions options;
  for (int i = 0; i < 50; ++i) {
    const auto t =
        generate_crash_text(trace::FailureClass::kOther, options, rng);
    // "other" resolutions come from the vague pool only.
    EXPECT_TRUE(contains_any(to_lower(t.resolution),
                             resolution_phrases(trace::FailureClass::kOther)))
        << t.resolution;
  }
}

TEST(TicketText, ConfusionInjectsForeignWords) {
  Rng rng(4);
  TextStyleOptions always;
  always.confusion_probability = 1.0;
  int foreign = 0;
  for (int i = 0; i < 50; ++i) {
    const auto t =
        generate_crash_text(trace::FailureClass::kPower, always, rng);
    const std::string all = to_lower(t.description + " " + t.resolution);
    for (trace::FailureClass c : trace::kClassifiedFailureClasses) {
      if (c == trace::FailureClass::kPower) continue;
      if (contains_any(all, signature_words(c))) {
        ++foreign;
        break;
      }
    }
  }
  EXPECT_GT(foreign, 40);  // nearly every ticket gets a confusing word
}

TEST(TicketText, BackgroundTextIsNonCrash) {
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const auto t = generate_background_text(rng);
    EXPECT_FALSE(contains_any(to_lower(t.description), crash_symptoms()))
        << t.description;
    EXPECT_FALSE(t.description.empty());
    EXPECT_FALSE(t.resolution.empty());
  }
}

TEST(TicketText, RejectsDegenerateOptions) {
  Rng rng(6);
  TextStyleOptions bad;
  bad.signature_words = 0;
  EXPECT_THROW(
      generate_crash_text(trace::FailureClass::kHardware, bad, rng),
      Error);
}

TEST(Vocabulary, AllClassesHaveDistinctSignatureWords) {
  for (trace::FailureClass a : trace::kAllFailureClasses) {
    EXPECT_FALSE(signature_words(a).empty());
    EXPECT_FALSE(resolution_phrases(a).empty());
  }
  // Signature pools of different real classes must not overlap (the
  // deliberate cross-class noise comes from the confusion knob instead).
  for (trace::FailureClass a : trace::kClassifiedFailureClasses) {
    for (trace::FailureClass b : trace::kClassifiedFailureClasses) {
      if (a == b) continue;
      for (std::string_view w : signature_words(a)) {
        for (std::string_view w2 : signature_words(b)) {
          EXPECT_NE(w, w2) << "overlap between " << to_string(a) << " and "
                           << to_string(b);
        }
      }
    }
  }
}

}  // namespace
}  // namespace fa::text
