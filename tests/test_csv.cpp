#include "src/util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa {
namespace {

std::vector<std::vector<std::string>> parse_all(const std::string& text) {
  std::istringstream in(text);
  CsvReader reader(in);
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  while (reader.read_row(row)) rows.push_back(row);
  return rows;
}

std::string write_all(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream out;
  CsvWriter writer(out);
  for (const auto& row : rows) writer.write_row(row);
  return out.str();
}

TEST(Csv, SimpleRoundTrip) {
  const std::vector<std::vector<std::string>> rows = {
      {"a", "b", "c"}, {"1", "2", "3"}};
  EXPECT_EQ(parse_all(write_all(rows)), rows);
}

TEST(Csv, QuotedFieldsRoundTrip) {
  const std::vector<std::vector<std::string>> rows = {
      {"plain", "with,comma", "with\"quote", "with\nnewline", ""}};
  EXPECT_EQ(parse_all(write_all(rows)), rows);
}

TEST(Csv, ReadsCrLfLines) {
  const auto rows = parse_all("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, LastLineWithoutNewline) {
  const auto rows = parse_all("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(parse_all("").empty());
}

TEST(Csv, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_all("\"abc"), Error);
}

TEST(Csv, EscapedQuoteInsideQuoted) {
  const auto rows = parse_all("\"he said \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "he said \"hi\"");
  EXPECT_EQ(rows[0][1], "x");
}

TEST(Csv, RandomizedRoundTripProperty) {
  // Property: any table of fields drawn from a hostile alphabet (commas,
  // quotes, newlines, CR) survives a write/read round trip unchanged.
  fa::Rng rng(99);
  const std::string alphabet = "ab,\"\n\r x7";
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::vector<std::string>> rows;
    const auto n_rows = rng.uniform_int(1, 5);
    const auto n_cols = rng.uniform_int(1, 6);
    for (std::int64_t r = 0; r < n_rows; ++r) {
      std::vector<std::string> row;
      for (std::int64_t c = 0; c < n_cols; ++c) {
        std::string field;
        const auto len = rng.uniform_int(0, 8);
        for (std::int64_t k = 0; k < len; ++k) {
          field += alphabet[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(alphabet.size()) - 1))];
        }
        // CR-containing fields are exact because the writer quotes them.
        row.push_back(std::move(field));
      }
      rows.push_back(std::move(row));
    }
    ASSERT_EQ(parse_all(write_all(rows)), rows) << "trial " << trial;
  }
}

TEST(Csv, ParseIntValid) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-7"), -7);
}

TEST(Csv, ParseIntInvalidThrows) {
  EXPECT_THROW(parse_int(""), Error);
  EXPECT_THROW(parse_int("12x"), Error);
  EXPECT_THROW(parse_int("abc"), Error);
}

TEST(Csv, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
}

TEST(Csv, ParseDoubleInvalidThrows) {
  EXPECT_THROW(parse_double(""), Error);
  EXPECT_THROW(parse_double("1.2.3"), Error);
}

TEST(Csv, ParseIntOutOfRangeThrows) {
  EXPECT_THROW(parse_int("99999999999999999999999"), Error);
  EXPECT_THROW(parse_int("-99999999999999999999999"), Error);
}

TEST(Csv, ParseFiniteDoubleValid) {
  EXPECT_DOUBLE_EQ(parse_finite_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_finite_double("-0.75"), -0.75);
}

TEST(Csv, ParseFiniteDoubleRejectsNonFinite) {
  EXPECT_THROW(parse_finite_double("nan"), Error);
  EXPECT_THROW(parse_finite_double("NaN"), Error);
  EXPECT_THROW(parse_finite_double("inf"), Error);
  EXPECT_THROW(parse_finite_double("-inf"), Error);
  EXPECT_THROW(parse_finite_double("1e999"), Error);  // overflows to inf
  EXPECT_THROW(parse_finite_double("bogus"), Error);
}

TEST(Csv, BareCarriageReturnInUnquotedFieldIsSwallowed) {
  // A lone \r outside quotes is treated as line-ending noise and dropped;
  // \r that must survive a round trip has to be quoted (and the writer
  // always quotes it).
  const auto rows = parse_all("a\rb,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"ab", "c"}));
}

TEST(Csv, QuotedFieldSpansPhysicalLines) {
  const auto rows = parse_all("\"line one\nline two\",x\nnext,y\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], "line one\nline two");
  EXPECT_EQ(rows[0][1], "x");
  EXPECT_EQ(rows[1], (std::vector<std::string>{"next", "y"}));
}

TEST(Csv, TrailingRowWithoutFinalNewline) {
  const auto rows = parse_all("a,b\n\"q\",last");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"q", "last"}));
}

TEST(Csv, EmptyFileReadsNoRowsRepeatedly) {
  std::istringstream in("");
  CsvReader reader(in);
  std::vector<std::string> row;
  EXPECT_FALSE(reader.read_row(row));
  EXPECT_FALSE(reader.read_row(row));  // stable at EOF
  EXPECT_TRUE(row.empty());
}

}  // namespace
}  // namespace fa
