#include "src/util/strings.h"

#include <gtest/gtest.h>

namespace fa {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, SplitSingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, JoinInvertsSplit) {
  const std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(join(parts, ","), "x,y,z");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ", "), "solo");
}

TEST(Strings, ToLower) {
  EXPECT_EQ(to_lower("Server UNREACHABLE"), "server unreachable");
  EXPECT_EQ(to_lower("abc123"), "abc123");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim("nospace"), "nospace");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hardware fix", "hard"));
  EXPECT_FALSE(starts_with("hw", "hardware"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, TokenizeWords) {
  const auto tokens = tokenize_words("Replaced faulty DISK, rebooted: host-3");
  const std::vector<std::string> expected = {"replaced", "faulty", "disk",
                                             "rebooted", "host", "3"};
  EXPECT_EQ(tokens, expected);
}

TEST(Strings, TokenizeEmptyAndPunctuationOnly) {
  EXPECT_TRUE(tokenize_words("").empty());
  EXPECT_TRUE(tokenize_words("--- !!! ...").empty());
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(format_double(0.00625, 4), "0.0063");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-1.5, 2), "-1.50");
}

}  // namespace
}  // namespace fa
