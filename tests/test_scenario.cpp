#include "src/sim/scenario.h"

#include <gtest/gtest.h>

#include "src/analysis/capacity_usage.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/spatial.h"
#include "src/sim/simulator.h"
#include "src/util/error.h"

namespace fa::sim {
namespace {

SimulationConfig small_config() {
  return SimulationConfig::paper_defaults().scaled(0.15);
}

const analysis::ClassLookup kTruth = [](const trace::Ticket& t) {
  return t.true_class;
};

TEST(Scenario, NoAftershocksCollapsesRecurrence) {
  const auto baseline_db = simulate(small_config());
  const auto ablated_db =
      simulate(apply_ablation(small_config(), Ablation::kNoAftershocks));

  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};
  const double baseline = analysis::recurrent_probability(
      baseline_db, baseline_db.crash_tickets(), pm, kMinutesPerWeek);
  const double ablated = analysis::recurrent_probability(
      ablated_db, ablated_db.crash_tickets(), pm, kMinutesPerWeek);
  EXPECT_GT(baseline, 0.15);
  EXPECT_LT(ablated, 0.25 * baseline);
}

TEST(Scenario, NoPropagationMakesAllIncidentsSingleton) {
  const auto db =
      simulate(apply_ablation(small_config(), Ablation::kNoPropagation));
  const auto spatial = analysis::analyze_spatial(db, kTruth);
  EXPECT_DOUBLE_EQ(spatial.all.two_or_more, 0.0);
  EXPECT_EQ(spatial.max_servers_in_incident, 1);
}

TEST(Scenario, FlatCovariatesRemoveDiskCountTrend) {
  const auto db =
      simulate(apply_ablation(small_config(), Ablation::kFlatCovariates));
  const analysis::CapacityAttribute disks =
      [](const trace::ServerRecord& s) {
        return s.disk_count ? std::optional<double>(*s.disk_count)
                            : std::nullopt;
      };
  const auto rates = analysis::capacity_binned_rates(
      db, db.crash_tickets(), {trace::MachineType::kVirtual, std::nullopt},
      disks, stats::BinSpec::from_edges({1.0, 2.0, 3.0, 7.0}));
  // Without the covariate curve the 1-disk and 3+-disk bins must be within
  // sampling noise of each other (the calibrated curve yields ~8x).
  ASSERT_GT(rates.population[0], 50u);
  const double lo = rates.overall_rate[0];
  const double hi = rates.overall_rate[2];
  EXPECT_LT(std::max(lo, hi), 2.5 * std::max(1e-9, std::min(lo, hi)));
}

TEST(Scenario, AblationsPreserveTicketVolumes) {
  // Ablations must not silently change the calibrated failure volume
  // (inflation math adapts to the switched-off mechanisms).
  const auto baseline = simulate(small_config());
  const auto no_shock =
      simulate(apply_ablation(small_config(), Ablation::kNoAftershocks));
  const double base_crash =
      static_cast<double>(baseline.crash_tickets().size());
  const double ablated_crash =
      static_cast<double>(no_shock.crash_tickets().size());
  EXPECT_NEAR(ablated_crash, base_crash, 0.35 * base_crash);
}

TEST(Scenario, VmRefreshClampsAgeCurve) {
  const auto config = SimulationConfig::paper_defaults();
  const auto refreshed = with_vm_refresh(config, 200.0);
  // Below the horizon the curve is unchanged; above it is clamped.
  EXPECT_DOUBLE_EQ(refreshed.vm_age_curve.at(100.0),
                   config.vm_age_curve.at(100.0));
  EXPECT_DOUBLE_EQ(refreshed.vm_age_curve.at(700.0),
                   config.vm_age_curve.at(200.0));
  EXPECT_LT(refreshed.vm_age_curve.at(700.0), config.vm_age_curve.at(700.0));
}

TEST(Scenario, VmRefreshBeyondCurveIsNoOp) {
  const auto config = SimulationConfig::paper_defaults();
  const auto refreshed = with_vm_refresh(config, 10000.0);
  EXPECT_EQ(refreshed.vm_age_curve.edges, config.vm_age_curve.edges);
  EXPECT_THROW(with_vm_refresh(config, 0.0), Error);
}

TEST(Scenario, AblationNamesAreStable) {
  EXPECT_EQ(to_string(Ablation::kNoAftershocks), "no-aftershocks");
  EXPECT_EQ(to_string(Ablation::kNoPropagation), "no-propagation");
  EXPECT_EQ(to_string(Ablation::kFlatCovariates), "flat-covariates");
}

}  // namespace
}  // namespace fa::sim
