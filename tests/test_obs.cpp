// Observability subsystem: registry semantics, span recording, exporter
// formats and — the load-bearing property — deterministic snapshots: the
// deterministic JSON section must be byte-identical for one workload at any
// thread count. Every test that touches the global registry resets it first
// (each test binary is its own process, so tests only race themselves).
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"
#include "src/util/thread_pool.h"

namespace {

using namespace fa;

obs::MetricsRegistry& registry() { return obs::MetricsRegistry::global(); }

// A deterministic workload: counter adds, histogram records and spans from
// inside a parallel_for. Integer adds are commutative, so totals are exact
// at any thread count; only the per-worker (timing-class) split varies.
void run_workload(std::size_t threads) {
  ThreadPool pool(threads);
  obs::Counter& events = obs::counter("test.workload.events");
  obs::Histogram& sizes = obs::histogram(
      "test.workload.sizes", obs::size_bounds(), {},
      obs::Stability::kDeterministic);
  obs::Span span("test.workload");
  pool.parallel_for(1000, [&](std::size_t i) {
    events.add(i % 3);
    sizes.record(static_cast<double>(i % 7));
    obs::counter("test.workload.by_parity",
                 {{"parity", i % 2 == 0 ? "even" : "odd"}})
        .add(1);
  });
}

TEST(MetricsRegistry, CounterHandlesAreIdempotentAndStable) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::Counter& a = obs::counter("test.idem", {{"k", "v"}});
  obs::Counter& b = obs::counter("test.idem", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  // Different labels are a different family member.
  obs::Counter& c = obs::counter("test.idem", {{"k", "w"}});
  EXPECT_NE(&a, &c);
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandles) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::Counter& counter = obs::counter("test.reset.counter");
  obs::Gauge& gauge = obs::gauge("test.reset.gauge");
  obs::Histogram& histogram =
      obs::histogram("test.reset.hist", {1.0, 2.0});
  counter.add(7);
  gauge.set(3.5);
  histogram.record(1.5);
  { obs::Span span("test.reset.span"); }
  registry().reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_TRUE(registry().span_events().empty());
  // Handles survive the reset and keep recording.
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
  const auto snapshot = registry().snapshot();
  bool found = false;
  for (const auto& s : snapshot.counters) {
    if (s.name == "test.reset.counter") {
      found = true;
      EXPECT_EQ(s.value, 1u);
    }
  }
  EXPECT_TRUE(found);
}

TEST(MetricsRegistry, RuntimeToggleMakesOpsNoOps) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::Counter& counter = obs::counter("test.toggle");
  obs::set_enabled(false);
  counter.add(5);
  { obs::Span span("test.toggle.span"); }
  obs::set_enabled(true);
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_TRUE(registry().span_events().empty());
  counter.add(1);
  EXPECT_EQ(counter.value(), 1u);
}

TEST(MetricsRegistry, HistogramBucketPlacement) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::Histogram& h = obs::histogram("test.buckets", {1.0, 10.0}, {},
                                     obs::Stability::kDeterministic);
  h.record(0.5);   // <= 1.0
  h.record(1.0);   // <= 1.0 (bounds are inclusive upper limits)
  h.record(5.0);   // <= 10.0
  h.record(100.0); // overflow
  const auto snapshot = registry().snapshot();
  for (const auto& s : snapshot.histograms) {
    if (s.name != "test.buckets") continue;
    ASSERT_EQ(s.buckets.size(), 3u);
    EXPECT_EQ(s.buckets[0], 2u);
    EXPECT_EQ(s.buckets[1], 1u);
    EXPECT_EQ(s.buckets[2], 1u);
    EXPECT_EQ(s.count, 4u);
    return;
  }
  FAIL() << "test.buckets not in snapshot";
}

TEST(BucketStats, QuantilesInterpolateWithinBuckets) {
  obs::BucketStats stats({10.0, 100.0, 1000.0});
  EXPECT_DOUBLE_EQ(stats.quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 10; ++i) stats.record(5.0);    // bucket <= 10
  for (int i = 0; i < 80; ++i) stats.record(50.0);   // bucket <= 100
  for (int i = 0; i < 10; ++i) stats.record(500.0);  // bucket <= 1000
  EXPECT_EQ(stats.count, 100u);
  EXPECT_DOUBLE_EQ(stats.min, 5.0);
  EXPECT_DOUBLE_EQ(stats.max, 500.0);
  // p50 lands mid-way through the 10..100 bucket; the estimate must stay
  // inside that bucket and inside the observed [min, max] envelope.
  const double p50 = stats.quantile(0.5);
  EXPECT_GT(p50, 10.0);
  EXPECT_LT(p50, 100.0);
  // p99 falls in the last occupied bucket, clamped by the observed max.
  const double p99 = stats.quantile(0.99);
  EXPECT_GT(p99, 100.0);
  EXPECT_LE(p99, 500.0);
  EXPECT_DOUBLE_EQ(stats.mean(), (10 * 5.0 + 80 * 50.0 + 10 * 500.0) / 100.0);
}

TEST(BucketStats, SingleValueCollapsesAllQuantiles) {
  obs::BucketStats stats(obs::sim_lag_minutes_bounds());
  stats.record(1440.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.5), 1440.0);
  EXPECT_DOUBLE_EQ(stats.quantile(0.99), 1440.0);
  EXPECT_DOUBLE_EQ(stats.min, 1440.0);
  EXPECT_DOUBLE_EQ(stats.max, 1440.0);
}

TEST(BucketStats, QuantileBoundsAreSortedAndDeduped) {
  const auto bounds = obs::quantile_bounds(15.0, 32.0 * 7.0 * 24.0 * 60.0, 2);
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_DOUBLE_EQ(bounds.front(), 15.0);
}

TEST(MetricsRegistry, HistogramTracksExtremesAndMergesBucketStats) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::Histogram& h = obs::histogram("test.merge", {1.0, 10.0}, {},
                                     obs::Stability::kDeterministic);
  h.record(4.0);
  obs::BucketStats local(std::vector<double>{1.0, 10.0});
  local.record(0.5);
  local.record(25.0);
  h.merge(local);
  // A mismatched-bounds merge is ignored rather than corrupting buckets.
  obs::BucketStats other(std::vector<double>{2.0, 20.0});
  other.record(3.0);
  h.merge(other);
  const auto snapshot = registry().snapshot();
  for (const auto& s : snapshot.histograms) {
    if (s.name != "test.merge") continue;
    EXPECT_EQ(s.count, 3u);
    EXPECT_DOUBLE_EQ(s.min, 0.5);
    EXPECT_DOUBLE_EQ(s.max, 25.0);
    ASSERT_EQ(s.buckets.size(), 3u);
    EXPECT_EQ(s.buckets[0], 1u);  // 0.5
    EXPECT_EQ(s.buckets[1], 1u);  // 4.0
    EXPECT_EQ(s.buckets[2], 1u);  // 25.0 overflow
    return;
  }
  FAIL() << "test.merge not in snapshot";
}

TEST(Export, DeterministicHistogramsCarryQuantiles) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::Histogram& h = obs::histogram("test.quantiles", {10.0, 100.0}, {},
                                     obs::Stability::kDeterministic);
  for (int i = 0; i < 100; ++i) h.record(50.0);
  const std::string det = obs::deterministic_json(registry().snapshot());
  EXPECT_NE(det.find("\"p50\""), std::string::npos);
  EXPECT_NE(det.find("\"p90\""), std::string::npos);
  EXPECT_NE(det.find("\"p99\""), std::string::npos);
  EXPECT_NE(det.find("\"min\": 50"), std::string::npos);
  EXPECT_NE(det.find("\"max\": 50"), std::string::npos);
  // All mass on one value: every quantile is exactly that value.
  EXPECT_NE(det.find("\"p99\": 50"), std::string::npos);
  EXPECT_EQ(det.find("\"sum\""), std::string::npos);
}

TEST(MetricsRegistry, CanonicalLabelsSortByKey) {
  EXPECT_EQ(obs::canonical_labels({{"b", "2"}, {"a", "1"}}), "a=1,b=2");
  EXPECT_EQ(obs::canonical_labels({}), "");
}

TEST(Span, NestingRecordsDepthAndCloseOrder) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  {
    obs::Span outer("test.outer");
    { obs::Span inner("test.inner"); }
    { obs::Span inner2("test.inner2"); }
  }
  const auto events = registry().span_events();
  ASSERT_EQ(events.size(), 3u);
  // Inner spans close before the outer one; depth reflects nesting.
  EXPECT_EQ(events[0].name, "test.inner");
  EXPECT_EQ(events[1].name, "test.inner2");
  EXPECT_EQ(events[2].name, "test.outer");
  EXPECT_EQ(events[0].depth, events[2].depth + 1);
  EXPECT_EQ(events[1].depth, events[2].depth + 1);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_LT(events[1].seq, events[2].seq);
  // The outer span encloses both inner spans in time.
  EXPECT_LE(events[2].start_us, events[0].start_us);
  EXPECT_GE(events[2].dur_us, events[0].dur_us);
}

TEST(Span, CloseEndsEarlyAndIsIdempotent) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  {
    obs::Span span("test.early");
    span.close();
    span.close();  // second close is a no-op
  }
  EXPECT_EQ(registry().span_events().size(), 1u);
}

TEST(Span, ThreadsGetDistinctBufferIds) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  { obs::Span span("test.tid.main"); }
  std::thread other([] { obs::Span span("test.tid.other"); });
  other.join();
  const auto events = registry().span_events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(Determinism, DeterministicJsonIsByteIdenticalAcrossThreadCounts) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  run_workload(1);
  const std::string serial = obs::deterministic_json(registry().snapshot());
  registry().reset();
  run_workload(8);
  const std::string parallel = obs::deterministic_json(registry().snapshot());
  EXPECT_EQ(serial, parallel);
  // The workload's own counters must actually be present (an empty
  // deterministic section would also compare equal).
  EXPECT_NE(serial.find("test.workload.events"), std::string::npos);
  EXPECT_NE(serial.find("parity=even"), std::string::npos);
}

TEST(Determinism, TimingDataStaysOutOfDeterministicSection) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  run_workload(4);
  const std::string det = obs::deterministic_json(registry().snapshot());
  EXPECT_EQ(det.find("fa.pool.worker."), std::string::npos)
      << "per-worker counters are schedule-dependent";
  EXPECT_EQ(det.find("\"spans\""), std::string::npos);
  EXPECT_EQ(det.find("\"sum\""), std::string::npos)
      << "histogram sums accumulate in schedule order";
}

TEST(Export, ToJsonEmbedsDeterministicPayloadVerbatim) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  run_workload(2);
  const auto snapshot = registry().snapshot();
  const std::string full = obs::to_json(snapshot);
  const std::string det = obs::deterministic_json(snapshot);
  // deterministic_json is "{\n" + SECTION + "\n}\n"; the same SECTION bytes
  // must appear verbatim in the full document, so byte-comparing either
  // form is equivalent.
  ASSERT_TRUE(det.starts_with("{\n") && det.ends_with("\n}\n"));
  const auto payload = det.substr(2, det.size() - 5);
  EXPECT_NE(payload.find("\"deterministic\""), std::string::npos);
  EXPECT_NE(full.find(payload), std::string::npos);
  EXPECT_NE(full.find("\"timing\""), std::string::npos);
}

TEST(Export, ChromeTraceShape) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  {
    obs::Span outer("trace.outer");
    obs::Span inner("trace.inner");
  }
  const std::string json =
      obs::chrome_trace_json(registry().span_events());
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"trace.inner\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"trace.outer\""), std::string::npos);
}

TEST(Export, TableRendersAllMetricKinds) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "built with FA_OBS_DISABLED";
  registry().reset();
  obs::counter("test.table.counter").add(3);
  obs::gauge("test.table.gauge").set(1.25);
  obs::histogram("test.table.hist", {1.0}).record(0.5);
  { obs::Span span("test.table.span"); }
  const std::string table = obs::render_table(registry().snapshot());
  EXPECT_NE(table.find("test.table.counter"), std::string::npos);
  EXPECT_NE(table.find("test.table.gauge"), std::string::npos);
  EXPECT_NE(table.find("test.table.hist"), std::string::npos);
  EXPECT_NE(table.find("test.table.span"), std::string::npos);
}

}  // namespace
