// Cross-cutting statistical properties: calibration of the KS p-value under
// the null hypothesis, chi-square uniformity of the RNG, and consistency of
// the MLE fitters as the sample grows. These guard the statistical layer as
// a whole rather than single functions.
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/fitting.h"
#include "src/stats/ks.h"
#include "src/stats/special.h"
#include "src/util/rng.h"

namespace fa::stats {
namespace {

TEST(StatisticalProperties, KsPValuesAreCalibratedUnderNull) {
  // Sampling from the hypothesized distribution, p-values must be roughly
  // uniform: the rejection rate at alpha = 0.05 stays near 5%, and at
  // alpha = 0.5 near 50%.
  Rng rng(42);
  const GammaDist truth(2.0, 3.0);
  const int replicas = 400;
  int reject05 = 0, reject50 = 0;
  std::vector<double> xs(200);
  for (int r = 0; r < replicas; ++r) {
    for (double& x : xs) x = truth.sample(rng);
    const auto result = ks_test(xs, truth);
    reject05 += result.p_value < 0.05;
    reject50 += result.p_value < 0.50;
  }
  EXPECT_NEAR(static_cast<double>(reject05) / replicas, 0.05, 0.035);
  EXPECT_NEAR(static_cast<double>(reject50) / replicas, 0.50, 0.10);
}

TEST(StatisticalProperties, KsPowerAgainstWrongModelGrowsWithN) {
  Rng rng(7);
  const GammaDist truth(0.5, 10.0);
  const Exponential wrong(1.0 / truth.mean());
  const auto reject_rate = [&](int n) {
    int rejections = 0;
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (int r = 0; r < 100; ++r) {
      for (double& x : xs) x = truth.sample(rng);
      rejections += ks_test(xs, wrong).p_value < 0.05;
    }
    return static_cast<double>(rejections) / 100.0;
  };
  const double small = reject_rate(50);
  const double large = reject_rate(1000);
  EXPECT_GT(large, 0.95);
  EXPECT_GE(large, small);
}

TEST(StatisticalProperties, RngUniformPassesChiSquare) {
  Rng rng(123);
  constexpr int kBins = 32;
  constexpr int kDraws = 320000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform() * kBins)];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // chi2 ~ ChiSq(31): P(chi2 > 61.1) ~ 0.001.
  EXPECT_LT(chi2, 61.1);
}

TEST(StatisticalProperties, RngUniformIntPassesChiSquare) {
  Rng rng(321);
  constexpr int kBins = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBins, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[static_cast<std::size_t>(rng.uniform_int(0, kBins - 1))];
  }
  const double expected = static_cast<double>(kDraws) / kBins;
  double chi2 = 0.0;
  for (int c : counts) {
    chi2 += (c - expected) * (c - expected) / expected;
  }
  // chi2 ~ ChiSq(9): P(chi2 > 27.9) ~ 0.001.
  EXPECT_LT(chi2, 27.9);
}

TEST(StatisticalProperties, GammaFitterIsConsistent) {
  // Error shrinks roughly like 1/sqrt(n).
  const GammaDist truth(0.7, 20.0);
  const auto shape_error = [&](int n, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<double> xs(static_cast<std::size_t>(n));
    for (double& x : xs) x = truth.sample(rng);
    return std::fabs(fit_gamma(xs).shape() - truth.shape());
  };
  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t s = 0; s < 10; ++s) {
    err_small += shape_error(500, 100 + s);
    err_large += shape_error(50000, 200 + s);
  }
  EXPECT_LT(err_large, err_small / 3.0);
}

TEST(StatisticalProperties, ModelSelectionErrorVanishesWithN) {
  // With enough data the true family always wins the likelihood race.
  Rng rng(9);
  int correct = 0;
  for (int r = 0; r < 20; ++r) {
    const LogNormal truth(1.0 + 0.1 * r, 1.2);
    std::vector<double> xs(5000);
    for (double& x : xs) x = truth.sample(rng);
    correct += fit_best(xs).dist->name() == "lognormal";
  }
  EXPECT_GE(correct, 19);
}

TEST(StatisticalProperties, NormalQuantileRoundTripGrid) {
  for (double p = 0.001; p < 0.999; p += 0.017) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-10) << p;
  }
}

}  // namespace
}  // namespace fa::stats
