#include <gtest/gtest.h>

#include "src/analysis/recurrence.h"
#include "src/analysis/repair_times.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(RepairTimes, ExactHours) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  const auto vm = b.add_vm(0);
  b.add_crash(pm, 1.0, 8.5);
  b.add_crash(vm, 2.0, 2.0);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();

  const auto all = repair_hours(db, failures, {});
  ASSERT_EQ(all.size(), 2u);

  const auto pm_hours =
      repair_hours(db, failures, {trace::MachineType::kPhysical, std::nullopt});
  ASSERT_EQ(pm_hours.size(), 1u);
  EXPECT_DOUBLE_EQ(pm_hours[0], 8.5);
}

TEST(RepairTimes, ClassFiltered) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 1.0, 80.0, trace::FailureClass::kHardware);
  b.add_crash(pm, 2.0, 0.8, trace::FailureClass::kPower);
  const auto db = b.finish();
  const ClassLookup truth = [](const trace::Ticket& t) {
    return t.true_class;
  };
  const auto hw = repair_hours(db, db.crash_tickets(), {},
                               trace::FailureClass::kHardware, truth);
  ASSERT_EQ(hw.size(), 1u);
  EXPECT_DOUBLE_EQ(hw[0], 80.0);
}

TEST(Recurrence, RecurrentProbabilityExact) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  // pm1: failures on day 10 and day 12 -> the day-10 failure recurs within
  // a week; the day-12 one does not.
  b.add_crash(pm1, 10.0, 1.0);
  b.add_crash(pm1, 12.0, 1.0);
  // pm2: one failure, never recurs.
  b.add_crash(pm2, 100.0, 1.0);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();

  const double weekly =
      recurrent_probability(db, failures, {}, kMinutesPerWeek);
  EXPECT_DOUBLE_EQ(weekly, 1.0 / 3.0);

  const double daily = recurrent_probability(db, failures, {}, kMinutesPerDay);
  EXPECT_DOUBLE_EQ(daily, 0.0);  // 2-day gap exceeds a day

  const double monthly =
      recurrent_probability(db, failures, {}, kMinutesPerMonth);
  EXPECT_DOUBLE_EQ(monthly, 1.0 / 3.0);
}

TEST(Recurrence, CensoringExcludesLateFailures) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  // Failure 2 days before window end: a one-week recurrence window reaches
  // past the observation end, so the event must not be counted as eligible.
  b.add_crash(pm, 363.0, 1.0);
  const auto db = b.finish();
  const double weekly =
      recurrent_probability(db, db.crash_tickets(), {}, kMinutesPerWeek);
  EXPECT_DOUBLE_EQ(weekly, 0.0);  // zero eligible events -> probability 0
}

TEST(Recurrence, RandomWeeklyProbabilityExact) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  b.add_pm(0);  // second server never fails
  // Two failures of the same server in week 0 count once; one in week 1.
  b.add_crash(pm1, 0.5, 1.0);
  b.add_crash(pm1, 1.5, 1.0);
  b.add_crash(pm1, 8.0, 1.0);
  const auto db = b.finish();
  const double p = random_failure_probability(db, db.crash_tickets(), {},
                                              Granularity::kWeekly);
  const int weeks = db.window().week_count();
  // Week 0: 1/2 servers failing; week 1: 1/2; remaining weeks: 0.
  EXPECT_NEAR(p, (0.5 + 0.5) / weeks, 1e-12);
}

TEST(Recurrence, RatioComposesBothMetrics) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 10.0, 1.0);
  b.add_crash(pm, 11.0, 1.0);
  const auto db = b.finish();
  const double ratio = recurrence_ratio(db, db.crash_tickets(), {});
  const double random = random_failure_probability(
      db, db.crash_tickets(), {}, Granularity::kWeekly);
  const double recurrent =
      recurrent_probability(db, db.crash_tickets(), {}, kMinutesPerWeek);
  EXPECT_DOUBLE_EQ(ratio, recurrent / random);
}

TEST(Recurrence, EmptyScopeGivesZeroRatio) {
  fa::testing::TinyDbBuilder b;
  b.add_pm(0);
  const auto db = b.finish();
  EXPECT_DOUBLE_EQ(
      recurrence_ratio(db, {}, {trace::MachineType::kVirtual, std::nullopt}),
      0.0);
}

}  // namespace
}  // namespace fa::analysis
