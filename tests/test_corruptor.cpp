#include "src/inject/corruptor.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/trace/csv_io.h"
#include "src/trace/sanitize.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace fa::inject {
namespace {

using trace::DefectClass;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

// One clean on-disk export shared by every test in this binary (the
// injector never mutates its input directory).
class CorruptorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("fa_corruptor_" + std::to_string(::getpid()));
    clean_ = (root_ / "clean").string();
    if (!std::filesystem::exists(clean_)) {
      trace::save_database(fa::testing::small_simulated_db(), clean_);
    }
  }
  std::string clean_dir() const { return clean_; }
  std::string out_dir(const std::string& name) const {
    return (root_ / name).string();
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(
        std::filesystem::temp_directory_path() /
        ("fa_corruptor_" + std::to_string(::getpid())));
  }

 private:
  std::filesystem::path root_;
  std::string clean_;
};

TEST_F(CorruptorTest, ZeroRateCopiesExportVerbatim) {
  const auto report =
      corrupt_database(clean_dir(), out_dir("zero"), 1, DefectMix{});
  EXPECT_EQ(report.total(), 0u);
  for (const std::string& file :
       {trace::kMetaFile, trace::kServersFile, trace::kTicketsFile,
        trace::kWeeklyUsageFile, trace::kPowerEventsFile,
        trace::kSnapshotsFile}) {
    EXPECT_EQ(slurp(clean_dir() + "/" + file),
              slurp(out_dir("zero") + "/" + file))
        << file;
  }
}

TEST_F(CorruptorTest, RoundTripCountsMatchPerClass) {
  // The tentpole property: sanitize(corrupt(clean)) attributes exactly the
  // injected defects, class by class.
  const auto injected = corrupt_database(clean_dir(), out_dir("rt"), 17,
                                         DefectMix::uniform(0.03));
  EXPECT_GT(injected.total(), 0u);
  const auto sanitized = trace::sanitize_database(out_dir("rt"));
  for (DefectClass cls : trace::kAllDefectClasses) {
    EXPECT_EQ(sanitized.report.count(cls), injected.count(cls))
        << trace::to_string(cls);
  }
  EXPECT_EQ(sanitized.report.counts_csv(), injected.counts_csv());
  EXPECT_EQ(sanitized.report.cascade_drops, 0u);
}

TEST_F(CorruptorTest, SingleClassMixesRoundTrip) {
  // Each class injected alone also round-trips, pinning down the defect
  // attribution (no class is silently absorbed by an earlier check).
  for (DefectClass cls : trace::kAllDefectClasses) {
    DefectMix mix;
    mix.set_rate(cls, cls == DefectClass::kTruncatedSeries ? 0.2 : 0.05);
    const std::string out =
        out_dir("single_" + std::string(trace::to_string(cls)));
    const auto injected = corrupt_database(clean_dir(), out, 23, mix);
    EXPECT_GT(injected.total(), 0u) << trace::to_string(cls);
    EXPECT_EQ(injected.total(), injected.count(cls));
    const auto sanitized = trace::sanitize_database(out);
    EXPECT_EQ(sanitized.report.count(cls), injected.count(cls))
        << trace::to_string(cls);
    EXPECT_EQ(sanitized.report.total_defects(), injected.total())
        << trace::to_string(cls);
  }
}

TEST_F(CorruptorTest, ByteIdenticalAcrossRunsAndThreadCounts) {
  const auto mix = DefectMix::uniform(0.02);
  const auto saved = ThreadPool::default_thread_count();
  ThreadPool::set_default_thread_count(1);
  const auto r1 = corrupt_database(clean_dir(), out_dir("t1"), 5, mix);
  ThreadPool::set_default_thread_count(8);
  const auto r2 = corrupt_database(clean_dir(), out_dir("t8"), 5, mix);
  ThreadPool::set_default_thread_count(saved);
  EXPECT_EQ(r1.counts_csv(), r2.counts_csv());
  for (const std::string& file :
       {trace::kServersFile, trace::kTicketsFile, trace::kWeeklyUsageFile,
        trace::kPowerEventsFile, trace::kSnapshotsFile}) {
    EXPECT_EQ(slurp(out_dir("t1") + "/" + file),
              slurp(out_dir("t8") + "/" + file))
        << file;
  }
}

TEST_F(CorruptorTest, DifferentSeedsProduceDifferentCorruption) {
  const auto mix = DefectMix::uniform(0.02);
  corrupt_database(clean_dir(), out_dir("s1"), 1, mix);
  corrupt_database(clean_dir(), out_dir("s2"), 2, mix);
  EXPECT_NE(slurp(out_dir("s1") + "/" + trace::kTicketsFile),
            slurp(out_dir("s2") + "/" + trace::kTicketsFile));
}

TEST_F(CorruptorTest, RefusesInPlaceCorruption) {
  EXPECT_THROW(corrupt_database(clean_dir(), clean_dir(), 1,
                                DefectMix::uniform(0.01)),
               Error);
}

TEST_F(CorruptorTest, RejectsOversubscribedMix) {
  EXPECT_THROW(corrupt_database(clean_dir(), out_dir("over"), 1,
                                DefectMix::uniform(0.5)),
               Error);
}

TEST_F(CorruptorTest, StrictLoaderRejectsCorruptedExport) {
  corrupt_database(clean_dir(), out_dir("strict"), 3,
                   DefectMix::uniform(0.02));
  EXPECT_THROW(trace::load_database(out_dir("strict")), Error);
}

}  // namespace
}  // namespace fa::inject
