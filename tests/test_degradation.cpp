// End-to-end degradation tests: corrupt a clean export at increasing total
// defect rates, sanitize it back, and check that the paper's headline
// artifacts survive — Table II-style populations, the Fig. 2 PM-vs-VM
// failure-rate ordering, and Table IV-style repair-time medians — while
// strict loading keeps failing fast on every corrupted export.
#include <array>
#include <filesystem>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/analysis/failure_rates.h"
#include "src/analysis/pipeline.h"
#include "src/analysis/repair_times.h"
#include "src/inject/corruptor.h"
#include "src/stats/descriptive.h"
#include "src/trace/csv_io.h"
#include "src/trace/sanitize.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa {
namespace {

// Six defect classes target tickets.csv, so a per-class rate of total/6
// yields roughly `total` defective ticket rows overall.
inject::DefectMix mix_with_total_rate(double total) {
  return inject::DefectMix::uniform(total / 6.0);
}

struct Headline {
  std::array<std::size_t, trace::kSubsystemCount> tickets_by_subsystem{};
  std::size_t pm_count = 0;
  std::size_t vm_count = 0;
  double pm_weekly_rate = 0.0;
  double vm_weekly_rate = 0.0;
  double pm_repair_median_hours = 0.0;
  double vm_repair_median_hours = 0.0;
};

Headline headline_metrics(const trace::TraceDatabase& db) {
  Headline h;
  for (const trace::Ticket& t : db.tickets()) {
    ++h.tickets_by_subsystem[static_cast<std::size_t>(t.subsystem)];
  }
  h.pm_count = db.server_count(trace::MachineType::kPhysical);
  h.vm_count = db.server_count(trace::MachineType::kVirtual);
  const analysis::AnalysisPipeline pipeline(db);
  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};
  const analysis::Scope vm{trace::MachineType::kVirtual, std::nullopt};
  const auto& failures = pipeline.failures();
  h.pm_weekly_rate =
      analysis::failure_rate_summary(db, failures, pm,
                                     analysis::Granularity::kWeekly)
          .mean;
  h.vm_weekly_rate =
      analysis::failure_rate_summary(db, failures, vm,
                                     analysis::Granularity::kWeekly)
          .mean;
  h.pm_repair_median_hours =
      stats::median(analysis::repair_hours(db, failures, pm));
  h.vm_repair_median_hours =
      stats::median(analysis::repair_hours(db, failures, vm));
  return h;
}

double relative_error(double got, double want) {
  return want == 0.0 ? 0.0 : std::abs(got - want) / std::abs(want);
}

class DegradationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = (std::filesystem::temp_directory_path() /
             ("fa_degradation_" + std::to_string(::getpid())))
                .string();
    clean_ = root_ + "/clean";
    trace::save_database(fa::testing::small_simulated_db(), clean_);
    baseline_ = new Headline(
        headline_metrics(fa::testing::small_simulated_db()));
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(root_);
    delete baseline_;
    baseline_ = nullptr;
  }

  // Corrupts at `total_rate`, checks strict rejection, returns the
  // sanitized database's headline metrics.
  static Headline degrade(double total_rate, std::uint64_t seed) {
    const std::string out =
        root_ + "/rate_" + std::to_string(static_cast<int>(total_rate * 100));
    const auto injected = inject::corrupt_database(
        clean_, out, seed, mix_with_total_rate(total_rate));
    EXPECT_GT(injected.total(), 0u);
    EXPECT_THROW(trace::load_database(out), Error);  // strict fails fast
    auto sanitized = trace::sanitize_database(out);
    EXPECT_EQ(sanitized.report.total_defects(), injected.total());
    return headline_metrics(sanitized.db);
  }

  static const Headline& baseline() { return *baseline_; }

  static std::string root_, clean_;
  static Headline* baseline_;
};

std::string DegradationTest::root_;
std::string DegradationTest::clean_;
Headline* DegradationTest::baseline_ = nullptr;

TEST_F(DegradationTest, OnePercentPreservesHeadlineNumbers) {
  const Headline h = degrade(0.01, 41);
  EXPECT_EQ(h.pm_count, baseline().pm_count);
  EXPECT_EQ(h.vm_count, baseline().vm_count);
  for (std::size_t s = 0; s < trace::kSubsystemCount; ++s) {
    EXPECT_LT(relative_error(
                  static_cast<double>(h.tickets_by_subsystem[s]),
                  static_cast<double>(baseline().tickets_by_subsystem[s])),
              0.05)
        << "subsystem " << s;
  }
  EXPECT_GT(h.pm_weekly_rate, h.vm_weekly_rate);  // Fig. 2 ordering
  EXPECT_LT(relative_error(h.pm_repair_median_hours,
                           baseline().pm_repair_median_hours),
            0.2);
  EXPECT_LT(relative_error(h.vm_repair_median_hours,
                           baseline().vm_repair_median_hours),
            0.2);
}

TEST_F(DegradationTest, FivePercentStaysWithinTolerance) {
  const Headline h = degrade(0.05, 42);
  // servers.csv travels verbatim, so Table II populations only move
  // through ticket-row damage.
  EXPECT_EQ(h.pm_count, baseline().pm_count);
  EXPECT_EQ(h.vm_count, baseline().vm_count);
  for (std::size_t s = 0; s < trace::kSubsystemCount; ++s) {
    EXPECT_LT(relative_error(
                  static_cast<double>(h.tickets_by_subsystem[s]),
                  static_cast<double>(baseline().tickets_by_subsystem[s])),
              0.05)
        << "subsystem " << s;
  }
  EXPECT_GT(h.pm_weekly_rate, h.vm_weekly_rate);
  EXPECT_LT(relative_error(h.pm_weekly_rate, baseline().pm_weekly_rate),
            0.15);
  EXPECT_LT(relative_error(h.vm_weekly_rate, baseline().vm_weekly_rate),
            0.15);
  EXPECT_LT(relative_error(h.pm_repair_median_hours,
                           baseline().pm_repair_median_hours),
            0.2);
  EXPECT_LT(relative_error(h.vm_repair_median_hours,
                           baseline().vm_repair_median_hours),
            0.2);
}

TEST_F(DegradationTest, TenPercentStillAnalyzableWithOrderingIntact) {
  // At 10% total damage the populations may drift past the tight bounds,
  // but the pipeline must still run and the paper's qualitative result —
  // physical machines fail more often than virtual ones — must survive.
  const Headline h = degrade(0.10, 43);
  EXPECT_GT(h.pm_weekly_rate, h.vm_weekly_rate);
  EXPECT_GT(h.pm_repair_median_hours, 0.0);
  EXPECT_GT(h.vm_repair_median_hours, 0.0);
}

}  // namespace
}  // namespace fa
