// End-to-end simulator integration tests: the scaled-down trace must already
// exhibit the paper's headline phenomena.
#include <gtest/gtest.h>

#include "src/analysis/failure_rates.h"
#include "src/analysis/recurrence.h"
#include "src/sim/simulator.h"
#include "tests/test_support.h"

namespace fa::sim {
namespace {

const trace::TraceDatabase& db() { return fa::testing::small_simulated_db(); }

std::vector<const trace::Ticket*> crashes() {
  return db().crash_tickets();
}

TEST(Simulator, PopulationMatchesScaledTable2) {
  const auto config = SimulationConfig::paper_defaults().scaled(0.15);
  std::size_t pms = 0, vms = 0;
  for (const auto& sys : config.systems) {
    pms += static_cast<std::size_t>(sys.pm_count);
    vms += static_cast<std::size_t>(sys.vm_count);
  }
  EXPECT_EQ(db().server_count(trace::MachineType::kPhysical), pms);
  EXPECT_EQ(db().server_count(trace::MachineType::kVirtual), vms);
}

TEST(Simulator, DeterministicAcrossRuns) {
  const auto config = SimulationConfig::paper_defaults().scaled(0.05);
  const auto a = simulate(config);
  const auto b = simulate(config);
  ASSERT_EQ(a.tickets().size(), b.tickets().size());
  for (std::size_t i = 0; i < a.tickets().size(); ++i) {
    EXPECT_EQ(a.tickets()[i].opened, b.tickets()[i].opened);
    EXPECT_EQ(a.tickets()[i].server, b.tickets()[i].server);
    EXPECT_EQ(a.tickets()[i].description, b.tickets()[i].description);
  }
}

TEST(Simulator, SeedChangesTrace) {
  auto config = SimulationConfig::paper_defaults().scaled(0.05);
  const auto a = simulate(config);
  config.seed += 1;
  const auto b = simulate(config);
  // Ticket volumes are calibrated (equal), but content must differ.
  ASSERT_EQ(a.tickets().size(), b.tickets().size());
  int differing = 0;
  for (std::size_t i = 0; i < a.tickets().size(); ++i) {
    differing += a.tickets()[i].opened != b.tickets()[i].opened;
  }
  EXPECT_GT(differing, static_cast<int>(a.tickets().size() / 2));
}

TEST(Simulator, PmFailureRateExceedsVmRate) {
  const auto failures = crashes();
  const auto pm = analysis::failure_rate_summary(
      db(), failures, {trace::MachineType::kPhysical, std::nullopt},
      analysis::Granularity::kWeekly);
  const auto vm = analysis::failure_rate_summary(
      db(), failures, {trace::MachineType::kVirtual, std::nullopt},
      analysis::Granularity::kWeekly);
  EXPECT_GT(pm.mean, vm.mean);
  // Paper: roughly 40% higher (we accept a broad band at small scale).
  EXPECT_LT(pm.mean, 4.0 * vm.mean);
}

TEST(Simulator, RecurrenceDominatesRandomFailures) {
  const auto failures = crashes();
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    const double ratio = analysis::recurrence_ratio(db(), failures, scope);
    EXPECT_GT(ratio, 10.0) << "type " << t;
    EXPECT_LT(ratio, 200.0) << "type " << t;
  }
}

TEST(Simulator, RecurrentProbabilityGrowsWithWindowSublinearly) {
  const auto failures = crashes();
  const analysis::Scope scope{trace::MachineType::kPhysical, std::nullopt};
  const double day = analysis::recurrent_probability(db(), failures, scope,
                                                     kMinutesPerDay);
  const double week = analysis::recurrent_probability(db(), failures, scope,
                                                      kMinutesPerWeek);
  const double month = analysis::recurrent_probability(db(), failures, scope,
                                                       kMinutesPerMonth);
  EXPECT_LT(day, week);
  EXPECT_LT(week, month);
  // Sub-linear growth: weekly is far less than 7x daily (Section IV-D).
  EXPECT_LT(week, 4.0 * day);
}

TEST(Simulator, CrashTicketsAreMinorityOfAllTickets) {
  std::size_t crash = 0;
  for (const trace::Ticket& t : db().tickets()) crash += t.is_crash;
  const double share = static_cast<double>(crash) / db().tickets().size();
  EXPECT_GT(share, 0.005);
  EXPECT_LT(share, 0.10);  // Table II: 0.85% - 6.9% per system
}

TEST(Simulator, FinalizedAndQueryable) {
  EXPECT_TRUE(db().finalized());
  EXPECT_FALSE(db().incidents().empty());
}

}  // namespace
}  // namespace fa::sim
