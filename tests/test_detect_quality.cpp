// Detection-quality gate: the online detector against simulator ground
// truth. A scripted hazard step (rate x4 at stream day 180) must be caught
// with high precision and recall at pinned latency across seeds, and a
// stationary replay must stay completely silent. The bounds are calibrated
// on scale-0.5 fleets: shifted seeds 1-10 all score precision = recall = 1
// with per-seed median latencies between 7 and 21 days, and stationary
// seeds 1-20 raise zero alerts.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/detect/scoring.h"
#include "src/detect/serve.h"
#include "src/sim/config.h"

namespace fa::detect {
namespace {

constexpr double kScale = 0.5;
constexpr int kShiftedSeeds = 10;
constexpr int kStationarySeeds = 5;

TenantSpec spec_for_seed(std::uint64_t seed, bool shifted) {
  TenantSpec spec;
  spec.name = "seed-" + std::to_string(seed);
  spec.config = sim::SimulationConfig::paper_defaults().scaled(kScale);
  spec.config.seed = seed;
  if (shifted) {
    spec.scenario.shifts.push_back(
        {ticket_window().begin + from_days(180), 4.0});
  }
  return spec;
}

TEST(DetectQuality, HazardStepCaughtAcrossSeeds) {
  std::vector<double> median_latency_days;
  for (int seed = 1; seed <= kShiftedSeeds; ++seed) {
    const TenantResult result =
        serve_tenant(spec_for_seed(static_cast<std::uint64_t>(seed), true));
    EXPECT_GE(result.score.precision(), 0.9) << "seed " << seed;
    EXPECT_GE(result.score.recall(), 0.9) << "seed " << seed;
    ASSERT_FALSE(result.score.latencies.empty()) << "seed " << seed;
    const double median = to_days(result.score.median_latency());
    // The slowest calibrated seed needs 21 days (a sparse stratum near the
    // arming floor); anything beyond a month means the detector regressed.
    EXPECT_LE(median, 28.0) << "seed " << seed;
    median_latency_days.push_back(median);
  }
  // Across seeds the typical detection delay stays well under three weeks.
  std::sort(median_latency_days.begin(), median_latency_days.end());
  const double across =
      median_latency_days[median_latency_days.size() / 2];
  EXPECT_LE(across, 18.0);
}

TEST(DetectQuality, StationaryStreamsRaiseNoAlerts) {
  for (int seed = 1; seed <= kStationarySeeds; ++seed) {
    const TenantResult result =
        serve_tenant(spec_for_seed(static_cast<std::uint64_t>(seed), false));
    EXPECT_TRUE(result.report.alerts.empty())
        << "seed " << seed << " raised:\n"
        << result.report.alert_log();
    EXPECT_EQ(result.score.changes, 0u);
    // Degenerate-stream conventions: nothing claimed, nothing missed.
    EXPECT_DOUBLE_EQ(result.score.precision(), 1.0);
    EXPECT_DOUBLE_EQ(result.score.recall(), 1.0);
  }
}

TEST(DetectQuality, ScoringJoinsAlertsToChanges) {
  const TimePoint t0 = ticket_window().begin;
  const std::vector<TimePoint> changes = {t0 + from_days(100),
                                          t0 + from_days(250)};
  std::vector<Alert> alerts;
  Alert a;
  a.kind = AlertKind::kRateShift;
  a.at = t0 + from_days(110);  // TP for change 1 (10 days latency)
  alerts.push_back(a);
  a.at = t0 + from_days(120);  // second TP for change 1 (no extra latency)
  alerts.push_back(a);
  a.at = t0 + from_days(50);   // before any change: FP
  alerts.push_back(a);
  a.at = t0 + from_days(260);  // TP for change 2 (10 days latency)
  alerts.push_back(a);
  a.kind = AlertKind::kUsageShift;
  a.at = t0 + from_days(255);  // usage alerts are excluded by default
  alerts.push_back(a);

  const DetectionScore score = score_alerts(changes, alerts);
  EXPECT_EQ(score.changes, 2u);
  EXPECT_EQ(score.detected, 2u);
  EXPECT_EQ(score.true_positive_alerts, 3u);
  EXPECT_EQ(score.false_positive_alerts, 1u);
  EXPECT_DOUBLE_EQ(score.precision(), 0.75);
  EXPECT_DOUBLE_EQ(score.recall(), 1.0);
  ASSERT_EQ(score.latencies.size(), 2u);
  EXPECT_EQ(score.median_latency(), from_days(10));

  // An alert past the horizon attributes to the change but counts false.
  ScoreOptions tight;
  tight.match_horizon = from_days(5);
  const DetectionScore missed = score_alerts(changes, alerts, tight);
  EXPECT_EQ(missed.detected, 0u);
  EXPECT_DOUBLE_EQ(missed.recall(), 0.0);
  EXPECT_EQ(missed.true_positive_alerts, 0u);
}

}  // namespace
}  // namespace fa::detect
