#include "src/analysis/age.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(Age, CensoredVmsExcluded) {
  fa::testing::TinyDbBuilder b;
  // VM created exactly at DB start: censored. VM created 100 days in:
  // observable.
  const auto censored = b.add_vm(0, 2, 2.0, 128.0, 2, std::nullopt);
  const auto young = b.add_vm(0, 2, 2.0, 128.0, 2, 100.0);
  b.add_pm(0);  // PMs never enter age analysis
  b.add_crash(censored, 10.0, 1.0);
  b.add_crash(young, 50.0, 1.0);
  const auto db = b.finish();

  const auto result = analyze_vm_age(db, db.crash_tickets());
  EXPECT_DOUBLE_EQ(result.observable_fraction, 0.5);
  ASSERT_EQ(result.failure_age_days.size(), 1u);
  // Ticket year starts 366 days after the monitoring DB; the VM appeared at
  // day 100, so a failure 50 days into the ticket year is at age 366-100+50.
  const double expected_age =
      to_days(ticket_window().begin - monitoring_window().begin) - 100.0 +
      50.0;
  EXPECT_NEAR(result.failure_age_days[0], expected_age, 1e-9);
}

TEST(Age, UniformAgesHaveSmallKsDistance) {
  fa::testing::TinyDbBuilder b;
  // 50 observable VMs first seen just before the ticket year begins (the
  // monitoring window starts 366 days earlier), failing at uniformly spread
  // ages across the year.
  const double offset =
      to_days(ticket_window().begin - monitoring_window().begin);
  std::vector<fa::trace::ServerId> vms;
  for (int i = 0; i < 50; ++i) {
    vms.push_back(b.add_vm(0, 2, 2.0, 128.0, 2, offset));
  }
  for (int i = 0; i < 50; ++i) {
    b.add_crash(vms[static_cast<std::size_t>(i)], 7.0 * i + 1.0, 1.0);
  }
  const auto db = b.finish();
  const auto result = analyze_vm_age(db, db.crash_tickets());
  ASSERT_EQ(result.failure_age_days.size(), 50u);
  EXPECT_LT(result.ks_distance_to_uniform, 0.12);
}

TEST(Age, IncreasingFailureCountsYieldPositiveSlope) {
  fa::testing::TinyDbBuilder b;
  const double offset =
      to_days(ticket_window().begin - monitoring_window().begin);
  std::vector<fa::trace::ServerId> vms;
  for (int i = 0; i < 60; ++i) {
    vms.push_back(b.add_vm(0, 2, 2.0, 128.0, 2, offset));
  }
  // Failure density grows with age: k failures in age bucket k.
  std::size_t v = 0;
  for (int bucket = 1; bucket <= 6; ++bucket) {
    for (int k = 0; k < bucket * 2; ++k) {
      b.add_crash(vms[v++ % vms.size()], 30.0 * bucket + k, 1.0);
    }
  }
  const auto db = b.finish();
  const auto result = analyze_vm_age(db, db.crash_tickets());
  EXPECT_GT(result.pdf_trend_slope, 0.0);
}

TEST(Age, NoObservableFailuresYieldsEmptyResult) {
  fa::testing::TinyDbBuilder b;
  const auto censored = b.add_vm(0);
  b.add_crash(censored, 10.0, 1.0);
  const auto db = b.finish();
  const auto result = analyze_vm_age(db, db.crash_tickets());
  EXPECT_TRUE(result.failure_age_days.empty());
  EXPECT_DOUBLE_EQ(result.observable_fraction, 0.0);
}

TEST(Age, SimulatedTraceMatchesPaperShape) {
  const auto& db = fa::testing::small_simulated_db();
  const auto result = analyze_vm_age(db, db.crash_tickets());
  // ~75% of VMs observable (Fig. 6 prose).
  EXPECT_NEAR(result.observable_fraction, 0.75, 0.08);
  ASSERT_GT(result.failure_age_days.size(), 20u);
  // No bathtub: CDF near the diagonal.
  EXPECT_LT(result.ks_distance_to_uniform, 0.30);
}

}  // namespace
}  // namespace fa::analysis
