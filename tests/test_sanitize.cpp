#include "src/trace/sanitize.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/analysis/pipeline.h"
#include "src/sim/simulator.h"
#include "src/trace/csv_io.h"
#include "src/util/error.h"
#include "src/util/strings.h"
#include "tests/test_support.h"

namespace fa::trace {
namespace {

// Fixture writing hand-crafted CSV exports: every file starts header-only,
// and each test overwrites the tables it exercises with dirty rows.
class SanitizeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fa_sanitize_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    write(kServersFile, "");
    write(kTicketsFile, "");
    write(kWeeklyUsageFile, "");
    write(kPowerEventsFile, "");
    write(kSnapshotsFile, "");
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir() const { return dir_.string(); }

  // (Re)writes one table: the schema header plus `rows` verbatim.
  void write(const std::string& file, const std::string& rows) {
    static const std::unordered_map<std::string, const std::vector<std::string>*>
        headers = {{kMetaFile, &meta_header()},
                   {kServersFile, &servers_header()},
                   {kTicketsFile, &tickets_header()},
                   {kWeeklyUsageFile, &weekly_usage_header()},
                   {kPowerEventsFile, &power_events_header()},
                   {kSnapshotsFile, &snapshots_header()}};
    std::ofstream out(dir() + "/" + file);
    out << join(*headers.at(file), ",") << "\n" << rows;
  }

  // One valid PM (file id 0) so tickets have something to reference.
  void write_one_server() { write(kServersFile, "0,PM,0,4,8.000,,,,0\n"); }

 private:
  std::filesystem::path dir_;
};

std::string ticket_row(int id, const std::string& incident, int server,
                       int is_crash, const std::string& cls, TimePoint opened,
                       TimePoint closed) {
  return std::to_string(id) + "," + incident + "," + std::to_string(server) +
         ",0," + std::to_string(is_crash) + "," + cls + "," +
         std::to_string(opened) + "," + std::to_string(closed) +
         ",desc,res\n";
}

TEST_F(SanitizeTest, EmptyTablesProduceEmptyCleanDatabase) {
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.total_defects(), 0u);
  EXPECT_EQ(result.report.cascade_drops, 0u);
  EXPECT_TRUE(result.db.finalized());
}

TEST_F(SanitizeTest, CleanSimulatedExportHasZeroDefects) {
  auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.02);
  const TraceDatabase original = fa::sim::simulate(config);
  save_database(original, dir());
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.total_defects(), 0u) << result.report.to_string();
  EXPECT_EQ(result.report.cascade_drops, 0u);
  EXPECT_EQ(result.db.servers().size(), original.servers().size());
  EXPECT_EQ(result.db.tickets().size(), original.tickets().size());
  EXPECT_EQ(result.report.rows_kept(kTicketsFile),
            original.tickets().size());
}

TEST_F(SanitizeTest, DuplicateServerIdKeepsFirstOccurrence) {
  write(kServersFile,
        "0,PM,0,4,8.000,,,,0\n"
        "0,PM,1,16,64.000,,,,0\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kDuplicateId), 1u);
  EXPECT_EQ(result.report.repaired(), 1u);
  ASSERT_EQ(result.db.servers().size(), 1u);
  EXPECT_EQ(result.db.servers()[0].cpu_count, 4);  // first row won
}

TEST_F(SanitizeTest, UnknownMachineTypeQuarantinedWithCascade) {
  write(kServersFile,
        "0,PM,0,4,8.000,,,,0\n"
        "1,mainframe,0,4,8.000,,,,0\n");
  const auto win = ticket_window();
  // A crash ticket on the quarantined server is a cascade, not a defect.
  write(kTicketsFile, ticket_row(0, "0", 1, 1, "software", win.begin + 100,
                                 win.begin + 200));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kUnknownEnum), 1u);
  EXPECT_EQ(result.report.count(DefectClass::kOrphanReference), 0u);
  EXPECT_EQ(result.report.cascade_drops, 1u);
  EXPECT_EQ(result.db.servers().size(), 1u);
  EXPECT_TRUE(result.db.tickets().empty());
}

TEST_F(SanitizeTest, OrphanCrashTicketDroppedBackgroundReferenceCleared) {
  write_one_server();
  const auto win = ticket_window();
  write(kTicketsFile,
        ticket_row(0, "0", 77, 1, "software", win.begin + 100,
                   win.begin + 200) +            // orphan crash: dropped
            ticket_row(1, "", 77, 0, "other", win.begin + 100,
                       win.begin + 200));        // orphan background: kept
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kOrphanReference), 2u);
  ASSERT_EQ(result.db.tickets().size(), 1u);
  EXPECT_FALSE(result.db.tickets()[0].is_crash);
  EXPECT_FALSE(result.db.tickets()[0].server.valid());
  EXPECT_EQ(result.report.rows_dropped(kTicketsFile), 1u);
}

TEST_F(SanitizeTest, CrashTicketWithoutIncidentGetsFreshId) {
  write_one_server();
  const auto win = ticket_window();
  write(kTicketsFile, ticket_row(0, "", 0, 1, "software", win.begin + 100,
                                 win.begin + 200));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kOrphanReference), 1u);
  EXPECT_EQ(result.report.repaired(), 1u);
  ASSERT_EQ(result.db.tickets().size(), 1u);
  EXPECT_TRUE(result.db.tickets()[0].incident.valid());
}

TEST_F(SanitizeTest, DuplicateTicketIdKeepsFirstOccurrence) {
  write_one_server();
  const auto win = ticket_window();
  write(kTicketsFile,
        ticket_row(0, "0", 0, 1, "software", win.begin + 100,
                   win.begin + 200) +
            ticket_row(0, "1", 0, 1, "network", win.begin + 300,
                       win.begin + 400));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kDuplicateId), 1u);
  ASSERT_EQ(result.db.tickets().size(), 1u);
  EXPECT_EQ(result.db.tickets()[0].opened, win.begin + 100);
}

TEST_F(SanitizeTest, EndBeforeOpenQuarantined) {
  write_one_server();
  const auto win = ticket_window();
  write(kTicketsFile, ticket_row(0, "0", 0, 1, "software", win.begin + 200,
                                 win.begin + 100));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kEndBeforeOpen), 1u);
  EXPECT_EQ(result.report.quarantined(), 1u);
  EXPECT_TRUE(result.db.tickets().empty());
  EXPECT_EQ(result.report.quarantined_rows(kTicketsFile),
            std::vector<std::size_t>{1});
}

TEST_F(SanitizeTest, OutOfWindowTicketClippedPreservingRepairDuration) {
  write_one_server();
  const auto win = ticket_window();
  const Duration repair = 2 * kMinutesPerHour;
  const TimePoint early = win.begin - from_days(10);
  write(kTicketsFile,
        ticket_row(0, "0", 0, 1, "software", early, early + repair));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kOutOfWindowTimestamp), 1u);
  ASSERT_EQ(result.db.tickets().size(), 1u);
  const Ticket& t = result.db.tickets()[0];
  EXPECT_EQ(t.opened, win.begin);
  EXPECT_EQ(t.closed - t.opened, repair);
}

TEST_F(SanitizeTest, TicketClosingPastWindowEndIsNotADefect) {
  // Simulated tickets legitimately close after the observation window
  // (repairs in flight at the cutoff); only `opened` is window-checked.
  write_one_server();
  const auto win = ticket_window();
  write(kTicketsFile, ticket_row(0, "0", 0, 1, "software", win.end - 10,
                                 win.end + kMinutesPerDay));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.total_defects(), 0u);
  EXPECT_EQ(result.db.tickets().size(), 1u);
}

TEST_F(SanitizeTest, UnknownFailureClassReassignedToOther) {
  write_one_server();
  const auto win = ticket_window();
  write(kTicketsFile, ticket_row(0, "0", 0, 1, "gremlins", win.begin + 100,
                                 win.begin + 200));
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kUnknownEnum), 1u);
  EXPECT_EQ(result.report.repaired(), 1u);
  ASSERT_EQ(result.db.tickets().size(), 1u);
  EXPECT_EQ(result.db.tickets()[0].true_class, FailureClass::kOther);
}

TEST_F(SanitizeTest, UnparseableTicketFieldQuarantined) {
  write_one_server();
  write(kTicketsFile, "0,0,0,0,notabool,software,100,200,desc,res\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kUnparseableField), 1u);
  EXPECT_TRUE(result.db.tickets().empty());
}

TEST_F(SanitizeTest, WrongArityQuarantined) {
  write_one_server();
  write(kTicketsFile, "0,0\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kUnparseableField), 1u);
  const auto& d = result.report.defects[0];
  EXPECT_EQ(d.file, kTicketsFile);
  EXPECT_EQ(d.row, 1u);
  EXPECT_EQ(d.action, DefectAction::kQuarantined);
}

TEST_F(SanitizeTest, NonFiniteUsageDistinctFromUnparseable) {
  write_one_server();
  write(kWeeklyUsageFile,
        "0,0,nan,10.0,,\n"    // parses, non-finite
        "0,1,bogus,10.0,,\n"  // does not parse
        "0,2,12.5,10.0,,\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kNonFiniteNumeric), 1u);
  EXPECT_EQ(result.report.count(kWeeklyUsageFile,
                                DefectClass::kUnparseableField),
            1u);
  EXPECT_EQ(result.report.rows_kept(kWeeklyUsageFile), 1u);
}

TEST_F(SanitizeTest, TruncatedSeriesToleratedButRecorded) {
  write(kServersFile,
        "0,PM,0,4,8.000,,,,0\n"
        "1,PM,0,4,8.000,,,,0\n");
  // Server 0's series stops at week 5; server 1 has no series at all (not
  // a truncation — it was never monitored).
  std::string rows;
  for (int w = 0; w <= 5; ++w) {
    rows += "0," + std::to_string(w) + ",10.0,10.0,,\n";
  }
  write(kWeeklyUsageFile, rows);
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kTruncatedSeries), 1u);
  // Rows are kept: the gap is recorded, not repaired away.
  EXPECT_EQ(result.report.rows_kept(kWeeklyUsageFile), 6u);
  EXPECT_EQ(result.db.weekly_usage_for(ServerId{0}).size(), 6u);
}

TEST_F(SanitizeTest, OutOfRangeWeekQuarantined) {
  write_one_server();
  write(kWeeklyUsageFile, "0,9999,10.0,10.0,,\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kOutOfWindowTimestamp), 1u);
  EXPECT_EQ(result.report.rows_kept(kWeeklyUsageFile), 0u);
}

TEST_F(SanitizeTest, PowerEventClippedIntoMonitoringCoverage) {
  write_one_server();
  const auto monitoring = monitoring_window();
  write(kPowerEventsFile,
        std::to_string(0) + "," + std::to_string(monitoring.end + 500) +
            ",1\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kOutOfWindowTimestamp), 1u);
  EXPECT_EQ(result.report.repaired(), 1u);
  ASSERT_EQ(result.db.power_events_for(ServerId{0}).size(), 1u);
  EXPECT_TRUE(monitoring.contains(
      result.db.power_events_for(ServerId{0})[0].at));
}

TEST_F(SanitizeTest, InvalidConsolidationQuarantined) {
  write_one_server();
  write(kSnapshotsFile, "0,1,,0\n");
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kUnparseableField), 1u);
  EXPECT_TRUE(result.db.snapshots_for(ServerId{0}).empty());
}

TEST_F(SanitizeTest, BadMetaRowFallsBackWithoutAborting) {
  write(kMetaFile,
        "ticket,notanumber,100\n"
        "solstice,0,100\n");
  write_one_server();
  const auto result = sanitize_database(dir());
  EXPECT_EQ(result.report.count(DefectClass::kUnparseableField), 1u);
  EXPECT_EQ(result.report.count(DefectClass::kUnknownEnum), 1u);
  // Defaults survive the bad rows.
  EXPECT_EQ(result.db.window().begin, ticket_window().begin);
}

TEST_F(SanitizeTest, CountsCsvListsEveryClassInEnumOrder) {
  const auto result = sanitize_database(dir());
  const auto lines = split(result.report.counts_csv(), '\n');
  ASSERT_GE(lines.size(), 1u + kAllDefectClasses.size());
  EXPECT_EQ(lines[0], "class,count");
  for (std::size_t i = 0; i < kAllDefectClasses.size(); ++i) {
    EXPECT_EQ(lines[i + 1],
              std::string(to_string(kAllDefectClasses[i])) + ",0");
  }
}

TEST_F(SanitizeTest, MissingTableStillThrows) {
  std::filesystem::remove(dir() + "/" + kTicketsFile);
  EXPECT_THROW(sanitize_database(dir()), Error);
}

TEST_F(SanitizeTest, AnalyzeLenientReportsDroppedTickets) {
  auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.05);
  save_database(fa::sim::simulate(config), dir());
  // Append a quarantinable row (end before open) and a repairable one.
  {
    std::ofstream out(dir() + "/" + kTicketsFile, std::ios::app);
    out << "999999,,0,0,0,other,2000,1000,desc,res\n";
  }
  const auto result = fa::analysis::analyze_lenient(dir());
  EXPECT_EQ(result.tickets_dropped, 1u);
  EXPECT_EQ(result.report.count(DefectClass::kEndBeforeOpen), 1u);
  EXPECT_FALSE(result.pipeline->failures().empty());
  // Strict loading of the same directory fails fast.
  EXPECT_THROW(load_database(dir()), Error);
}

}  // namespace
}  // namespace fa::trace
