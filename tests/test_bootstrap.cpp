#include "src/stats/bootstrap.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/stats/descriptive.h"
#include "src/util/error.h"

namespace fa::stats {
namespace {

std::vector<double> normal_sample(int n, double mean, double sd,
                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(Bootstrap, IntervalBracketsPointEstimate) {
  const auto xs = normal_sample(500, 10.0, 2.0, 3);
  Rng rng(4);
  const auto ci = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, rng);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, 10.0, 0.3);
  // CI half-width ~ 1.96 * 2/sqrt(500) ~ 0.18.
  EXPECT_NEAR(ci.hi - ci.lo, 0.35, 0.15);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
  const auto xs = normal_sample(300, 0.0, 1.0, 5);
  Rng rng1(6), rng2(6);
  const auto narrow = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, rng1, 1000,
      0.80);
  const auto wide = bootstrap_ci(
      xs, [](std::span<const double> s) { return mean(s); }, rng2, 1000,
      0.99);
  EXPECT_GT(wide.hi - wide.lo, narrow.hi - narrow.lo);
}

TEST(Bootstrap, DeterministicUnderSeed) {
  const auto xs = normal_sample(100, 5.0, 1.0, 7);
  Rng rng1(8), rng2(8);
  const auto a = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, rng1);
  const auto b = bootstrap_ci(
      xs, [](std::span<const double> s) { return median(s); }, rng2);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, RejectsBadArguments) {
  Rng rng(9);
  const auto stat = [](std::span<const double> s) { return mean(s); };
  EXPECT_THROW(bootstrap_ci({}, stat, rng), Error);
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(bootstrap_ci(xs, stat, rng, 5), Error);
  EXPECT_THROW(bootstrap_ci(xs, stat, rng, 100, 1.5), Error);
}

}  // namespace
}  // namespace fa::stats
