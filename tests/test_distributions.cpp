// Property-based checks shared by every distribution family, run over a
// parameter grid via INSTANTIATE_TEST_SUITE_P: CDF monotonicity,
// quantile/CDF inversion, pdf == d/dx CDF, log_pdf == ln pdf, and sample
// moments against analytic moments.
#include <cmath>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/stats/distribution.h"
#include "src/stats/exponential.h"
#include "src/stats/gamma_dist.h"
#include "src/stats/lognormal.h"
#include "src/stats/pareto.h"
#include "src/stats/weibull.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::stats {
namespace {

struct DistCase {
  std::string label;
  std::function<DistributionPtr()> make;
  bool finite_variance = true;
};

void PrintTo(const DistCase& c, std::ostream* os) { *os << c.label; }

class DistributionProperties : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionProperties, CdfIsMonotoneFromZeroToOne) {
  const auto dist = GetParam().make();
  double prev = dist->cdf(0.0);
  EXPECT_GE(prev, 0.0);
  for (double x = 0.01; x < 1e4; x *= 1.7) {
    const double c = dist->cdf(x);
    EXPECT_GE(c, prev) << "x=" << x;
    EXPECT_LE(c, 1.0) << "x=" << x;
    prev = c;
  }
  EXPECT_NEAR(dist->cdf(1e12), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(dist->cdf(-1.0), 0.0);
}

TEST_P(DistributionProperties, QuantileInvertsCdf) {
  const auto dist = GetParam().make();
  for (double p : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double x = dist->quantile(p);
    EXPECT_NEAR(dist->cdf(x), p, 1e-8) << "p=" << p;
  }
}

TEST_P(DistributionProperties, PdfMatchesCdfDerivative) {
  const auto dist = GetParam().make();
  for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double x = dist->quantile(p);
    const double h = std::max(1e-6, x * 1e-6);
    const double numeric = (dist->cdf(x + h) - dist->cdf(x - h)) / (2.0 * h);
    const double analytic = dist->pdf(x);
    EXPECT_NEAR(numeric, analytic,
                1e-4 * std::max(1.0, std::fabs(analytic)))
        << "p=" << p << " x=" << x;
  }
}

TEST_P(DistributionProperties, LogPdfConsistentWithPdf) {
  const auto dist = GetParam().make();
  for (double p : {0.05, 0.5, 0.95}) {
    const double x = dist->quantile(p);
    EXPECT_NEAR(std::exp(dist->log_pdf(x)), dist->pdf(x),
                1e-10 * std::max(1.0, dist->pdf(x)));
  }
  EXPECT_EQ(dist->pdf(-5.0), 0.0);
  EXPECT_TRUE(std::isinf(dist->log_pdf(-5.0)));
}

TEST_P(DistributionProperties, SampleMomentsMatchAnalytic) {
  const auto dist = GetParam().make();
  Rng rng(99);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = dist->sample(rng);
    ASSERT_GE(x, 0.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, dist->mean(), 0.03 * dist->mean() + 1e-3);
  if (GetParam().finite_variance) {
    const double var = sum2 / n - mean * mean;
    EXPECT_NEAR(var, dist->variance(), 0.12 * dist->variance() + 1e-3);
  }
}

TEST_P(DistributionProperties, MedianEqualsHalfQuantile) {
  const auto dist = GetParam().make();
  EXPECT_DOUBLE_EQ(dist->median(), dist->quantile(0.5));
}

TEST_P(DistributionProperties, QuantileRejectsOutOfRange) {
  const auto dist = GetParam().make();
  EXPECT_THROW(dist->quantile(-0.1), Error);
  EXPECT_THROW(dist->quantile(1.0), Error);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, DistributionProperties,
    ::testing::Values(
        DistCase{"exponential_rate_half",
                 [] { return std::make_unique<Exponential>(0.5); }},
        DistCase{"exponential_rate_3",
                 [] { return std::make_unique<Exponential>(3.0); }},
        DistCase{"weibull_shape_below_1",
                 [] { return std::make_unique<Weibull>(0.7, 10.0); }},
        DistCase{"weibull_shape_above_1",
                 [] { return std::make_unique<Weibull>(2.5, 3.0); }},
        DistCase{"gamma_shape_below_1",
                 [] { return std::make_unique<GammaDist>(0.6, 40.0); }},
        DistCase{"gamma_shape_above_1",
                 [] { return std::make_unique<GammaDist>(4.0, 2.0); }},
        DistCase{"lognormal_narrow",
                 [] { return std::make_unique<LogNormal>(1.0, 0.5); }},
        DistCase{"lognormal_wide",
                 [] { return std::make_unique<LogNormal>(2.0, 1.5); }},
        // alpha = 2.5 has finite variance but infinite kurtosis, so the
        // sample-variance estimator converges too slowly to assert on.
        DistCase{"pareto_heavy",
                 [] { return std::make_unique<Pareto>(1.0, 2.5); },
                 false},
        DistCase{"pareto_infinite_variance",
                 [] { return std::make_unique<Pareto>(2.0, 1.8); },
                 false}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return info.param.label;
    });

TEST(Distributions, InvalidParametersThrow) {
  EXPECT_THROW(Exponential(0.0), Error);
  EXPECT_THROW(Weibull(-1.0, 1.0), Error);
  EXPECT_THROW(Weibull(1.0, 0.0), Error);
  EXPECT_THROW(GammaDist(0.0, 1.0), Error);
  EXPECT_THROW(LogNormal(0.0, 0.0), Error);
  EXPECT_THROW(Pareto(0.0, 1.0), Error);
}

TEST(Distributions, LogNormalFromMeanMedianSolvesExactly) {
  // Table IV hardware repair: mean 80.1 h, median 8.28 h.
  const auto d = LogNormal::from_mean_median(80.1, 8.28);
  EXPECT_NEAR(d.mean(), 80.1, 1e-9);
  EXPECT_NEAR(d.median(), 8.28, 1e-9);
  EXPECT_THROW(LogNormal::from_mean_median(5.0, 5.0), Error);
  EXPECT_THROW(LogNormal::from_mean_median(5.0, -1.0), Error);
}

TEST(Distributions, GammaMeanVariance) {
  const GammaDist g(3.0, 2.0);
  EXPECT_DOUBLE_EQ(g.mean(), 6.0);
  EXPECT_DOUBLE_EQ(g.variance(), 12.0);
}

TEST(Distributions, WeibullShapeOneIsExponential) {
  const Weibull w(1.0, 4.0);
  const Exponential e(0.25);
  for (double x : {0.5, 2.0, 10.0}) {
    EXPECT_NEAR(w.cdf(x), e.cdf(x), 1e-12);
    EXPECT_NEAR(w.pdf(x), e.pdf(x), 1e-12);
  }
}

TEST(Distributions, ParetoInfiniteMoments) {
  EXPECT_TRUE(std::isinf(Pareto(1.0, 0.9).mean()));
  EXPECT_TRUE(std::isinf(Pareto(1.0, 1.5).variance()));
}

TEST(Distributions, DescribeMentionsFamilyAndParameters) {
  EXPECT_NE(GammaDist(0.57, 65.0).describe().find("Gamma"),
            std::string::npos);
  EXPECT_NE(LogNormal(1.0, 2.0).describe().find("sigma"), std::string::npos);
  EXPECT_EQ(Exponential(2.0).name(), "exponential");
}

}  // namespace
}  // namespace fa::stats
