#include "src/trace/recovery.h"

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/out_of_core.h"
#include "src/inject/io_faults.h"
#include "src/sim/simulator.h"
#include "src/trace/columnar_io.h"
#include "src/trace/trace_writer.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace fa::trace {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A small but fully populated simulated trace (every table has rows),
// shared across the torture cases in this binary.
const TraceDatabase& torture_db() {
  static const TraceDatabase db = [] {
    return sim::simulate(sim::SimulationConfig::paper_defaults().scaled(0.02));
  }();
  return db;
}

constexpr std::uint32_t kChunkRows = 256;

class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fa_recovery_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Streams `db` into `name`, crashing at byte `crash_at` (never crashes
  // when < 0). Returns true when the injected crash fired.
  bool write_with_crash(const TraceDatabase& db, const std::string& name,
                        std::int64_t crash_at,
                        std::uint32_t checkpoint_every = 0) const {
    WriterOptions options;
    options.chunk_rows = kChunkRows;
    options.checkpoint_every_chunks = checkpoint_every;
    std::unique_ptr<io::WritableFile> file =
        std::make_unique<io::PosixWritableFile>(path(name));
    if (crash_at >= 0) {
      inject::IoFaultConfig faults;
      faults.crash_at_byte = crash_at;
      file = std::make_unique<inject::FaultyFile>(std::move(file), faults);
    }
    try {
      ColumnarWriter writer(std::move(file), options);
      write_columnar(db, writer);
      writer.finish();
    } catch (const inject::InjectedCrash&) {
      return true;
    }
    return false;
  }

  fs::path dir_;
};

// ---- salvage scan ----

TEST_F(RecoveryTest, ScanOnFinishedFileSeesEveryChunk) {
  ASSERT_FALSE(write_with_crash(torture_db(), "clean.fac", -1));
  const SalvageScan scan = scan_columnar_salvage(path("clean.fac"));
  EXPECT_TRUE(scan.header_ok);
  EXPECT_TRUE(scan.finished);
  EXPECT_EQ(scan.stop_reason, "reached the footer");
  EXPECT_EQ(scan.chunk_rows, kChunkRows);

  ChunkReader reader(path("clean.fac"));
  for (columnar::Table t : columnar::kAllTables) {
    const auto i = static_cast<std::size_t>(t);
    EXPECT_EQ(scan.chunks_salvageable[i], reader.chunk_count(t));
    EXPECT_EQ(scan.rows_salvageable[i], reader.row_count(t));
  }
  EXPECT_NE(scan.to_string().find("state: finished"), std::string::npos);
}

TEST_F(RecoveryTest, ScanOnGarbageReportsInvalidHeader) {
  write_file(dir_ / "bogus.fac", std::string(256, 'x'));
  const SalvageScan scan = scan_columnar_salvage(path("bogus.fac"));
  EXPECT_FALSE(scan.header_ok);
  EXPECT_TRUE(scan.chunks.empty());
  EXPECT_NE(scan.to_string().find("header: INVALID"), std::string::npos);
  EXPECT_THROW(recover_columnar(path("bogus.fac"), path("out.fac")), Error);
}

TEST_F(RecoveryTest, ScanOnMissingFileThrowsIoError) {
  EXPECT_THROW(scan_columnar_salvage(path("missing.fac")), io::IoError);
}

// ---- the torture test (tentpole acceptance) ----
//
// Crash the writer at every frame boundary and at sampled intra-frame
// offsets. For every crash point the damaged file must be the exact byte
// prefix of the uncrashed reference, and recovery must produce a valid
// columnar file whose chunks are byte-identical (same checksums, same
// rows) to the reference's chunk prefix — never silently corrupt.
TEST_F(RecoveryTest, TortureCrashAtEveryChunkBoundaryRecoversAnExactPrefix) {
  const TraceDatabase& db = torture_db();
  ASSERT_FALSE(write_with_crash(db, "ref.fac", -1));
  const std::string reference = read_file(dir_ / "ref.fac");
  const SalvageScan ref_scan = scan_columnar_salvage(path("ref.fac"));
  ASSERT_TRUE(ref_scan.finished);
  ASSERT_GT(ref_scan.total_chunks(), 4u);
  ChunkReader ref_reader(path("ref.fac"));

  // Crash points: the post-header boundary, every frame boundary, and for
  // every chunk a sampled mid-frame-header and mid-payload offset.
  std::vector<std::uint64_t> crash_points = {8};
  for (const SalvagedChunkRef& ref : ref_scan.chunks) {
    const std::uint64_t frame_start = ref.payload_offset - 32;
    crash_points.push_back(frame_start + 17);  // torn mid-frame-header
    crash_points.push_back(ref.payload_offset + ref.payload_size / 2);
    std::uint64_t end = ref.payload_offset + ref.payload_size;
    crash_points.push_back(end + (end % 8 == 0 ? 0 : 8 - end % 8));
  }
  // And a crash inside the footer region (all data already durable).
  crash_points.push_back(reference.size() - 10);

  for (const std::uint64_t crash_at : crash_points) {
    SCOPED_TRACE("crash at byte " + std::to_string(crash_at));
    ASSERT_TRUE(write_with_crash(db, "crashed.fac",
                                 static_cast<std::int64_t>(crash_at)));

    // The injector persisted the exact pre-crash prefix: the damaged file
    // is byte-for-byte the reference cut at the crash offset.
    const std::string damaged = read_file(dir_ / "crashed.fac");
    ASSERT_EQ(damaged.size(), crash_at);
    ASSERT_EQ(damaged, reference.substr(0, crash_at));

    const SalvageReport report =
        recover_columnar(path("crashed.fac"), path("recovered.fac"));
    EXPECT_EQ(report.rows_recovered, report.scan.total_rows());

    // The recovered file is strict-readable and its chunks are a byte-exact
    // prefix of the reference's per-table chunk sequence.
    ChunkReader recovered(path("recovered.fac"));
    for (columnar::Table t : columnar::kAllTables) {
      const std::size_t n = recovered.chunk_count(t);
      ASSERT_LE(n, ref_reader.chunk_count(t));
      std::uint64_t rows = 0;
      for (std::size_t c = 0; c < n; ++c) {
        const columnar::ChunkInfo& got = recovered.chunk_info(t, c);
        const columnar::ChunkInfo& want = ref_reader.chunk_info(t, c);
        ASSERT_EQ(got.rows, want.rows)
            << columnar::table_name(t) << " chunk " << c;
        ASSERT_EQ(got.checksum, want.checksum)
            << columnar::table_name(t) << " chunk " << c
            << ": recovered bytes diverge from the uncrashed run";
        rows += got.rows;
      }
      EXPECT_EQ(recovered.row_count(t), rows);
    }

    // Degraded-mode analysis on the recovered file completes and reports a
    // clean (non-partial) read.
    DegradedReadReport degraded;
    const analysis::OutOfCoreSummary summary =
        analysis::summarize_columnar(path("recovered.fac"), true, &degraded);
    EXPECT_FALSE(degraded.degraded());
    EXPECT_EQ(summary.servers,
              recovered.row_count(columnar::Table::kServers));
  }
}

TEST_F(RecoveryTest, RecoveryIsIdempotent) {
  const TraceDatabase& db = torture_db();
  ASSERT_FALSE(write_with_crash(db, "ref.fac", -1));
  const std::string reference = read_file(dir_ / "ref.fac");
  ASSERT_TRUE(write_with_crash(
      db, "crashed.fac", static_cast<std::int64_t>(reference.size() * 2 / 3)));

  recover_columnar(path("crashed.fac"), path("r1.fac"));
  recover_columnar(path("r1.fac"), path("r2.fac"));
  EXPECT_EQ(read_file(dir_ / "r1.fac"), read_file(dir_ / "r2.fac"))
      << "recover(recover(x)) != recover(x)";
}

TEST_F(RecoveryTest, RecoveringAFinishedFileLosesNothing) {
  ASSERT_FALSE(write_with_crash(torture_db(), "ref.fac", -1));
  const SalvageReport report =
      recover_columnar(path("ref.fac"), path("recovered.fac"));
  EXPECT_TRUE(report.scan.finished);

  ChunkReader ref(path("ref.fac"));
  ChunkReader got(path("recovered.fac"));
  for (columnar::Table t : columnar::kAllTables) {
    EXPECT_EQ(got.row_count(t), ref.row_count(t));
  }
  EXPECT_EQ(got.window().begin, ref.window().begin);
  EXPECT_EQ(got.next_incident(), ref.next_incident());
}

// ---- footer checkpoints (loss bound + metadata recovery) ----

// A writer with checkpoint_every_chunks = 1 snapshots the footer after
// every flushed chunk. Crashing mid-stream then loses at most the one
// chunk being written, and the non-default observation windows + incident
// counter survive via the checkpoint (without one they fall back to paper
// defaults).
TEST_F(RecoveryTest, CheckpointsBoundLossToOneChunkAndRecoverMetadata) {
  TraceDatabase db;
  const ObservationWindow monitoring{0, 900 * kMinutesPerDay};
  const ObservationWindow ticket{50 * kMinutesPerDay, 500 * kMinutesPerDay};
  const ObservationWindow onoff{60 * kMinutesPerDay, 200 * kMinutesPerDay};
  db.set_windows(ticket, monitoring, onoff);
  ServerRecord s;
  s.type = MachineType::kPhysical;
  s.first_record = monitoring.begin;
  const ServerId server = db.add_server(s);
  for (int i = 0; i < 41; ++i) {
    Ticket t;
    t.incident = db.new_incident();
    t.server = server;
    t.is_crash = true;
    t.opened = ticket.begin + from_days(1.0 + i);
    t.closed = t.opened + from_hours(2.0);
    t.description = "server unresponsive";
    t.resolution = "fixed";
    db.add_ticket(std::move(t));
  }
  db.finalize();

  // chunk_rows = 4: 41 tickets cut into ten full chunks + one partial.
  const auto write_crashed = [&](const std::string& name,
                                 std::int64_t crash_at,
                                 std::uint32_t checkpoint_every) {
    WriterOptions options;
    options.chunk_rows = 4;
    options.checkpoint_every_chunks = checkpoint_every;
    inject::IoFaultConfig faults;
    faults.crash_at_byte = crash_at;
    try {
      ColumnarWriter writer(
          std::make_unique<inject::FaultyFile>(
              std::make_unique<io::PosixWritableFile>(path(name)), faults),
          options);
      write_columnar(db, writer);
      writer.finish();
      return false;
    } catch (const inject::InjectedCrash&) {
      return true;
    }
  };

  // Locate the ticket chunk frames of an uncrashed checkpointed stream.
  WriterOptions options;
  options.chunk_rows = 4;
  options.checkpoint_every_chunks = 1;
  {
    ColumnarWriter writer(path("ref.fac"), options);
    write_columnar(db, writer);
    writer.finish();
  }
  const SalvageScan ref_scan = scan_columnar_salvage(path("ref.fac"));
  ASSERT_TRUE(ref_scan.finished);
  std::vector<SalvagedChunkRef> ticket_chunks;
  for (const SalvagedChunkRef& ref : ref_scan.chunks) {
    if (ref.table == columnar::Table::kTickets) ticket_chunks.push_back(ref);
  }
  ASSERT_GE(ticket_chunks.size(), 5u);

  // Crash while writing ticket chunk k (mid-payload): exactly the first k
  // chunks (4k rows) survive — at most one chunk of rows is lost relative
  // to everything the writer had started to persist.
  const std::size_t k = ticket_chunks.size() / 2;
  const std::int64_t crash_at = static_cast<std::int64_t>(
      ticket_chunks[k].payload_offset + ticket_chunks[k].payload_size / 2);
  ASSERT_TRUE(write_crashed("ckpt.fac", crash_at, 1));
  const SalvageReport with_ckpt =
      recover_columnar(path("ckpt.fac"), path("ckpt_rec.fac"));
  const auto tickets_idx = static_cast<std::size_t>(columnar::Table::kTickets);
  EXPECT_EQ(with_ckpt.scan.rows_salvageable[tickets_idx], 4u * k);
  EXPECT_TRUE(with_ckpt.scan.checkpoint_seen);
  EXPECT_TRUE(with_ckpt.scan.windows_recovered);

  // The checkpoint restored the writer metadata exactly.
  ChunkReader recovered(path("ckpt_rec.fac"));
  EXPECT_EQ(recovered.window().begin, ticket.begin);
  EXPECT_EQ(recovered.window().end, ticket.end);
  EXPECT_EQ(recovered.monitoring().end, monitoring.end);
  EXPECT_EQ(recovered.onoff_tracking().begin, onoff.begin);
  EXPECT_GE(recovered.next_incident(), static_cast<std::int32_t>(4 * k));

  // The same mid-chunk crash without checkpoints salvages the same rows
  // but cannot recover the custom windows (they fall back to paper
  // defaults). The checkpoint-free stream is shorter, so locate the same
  // ticket chunk in its own reference.
  {
    WriterOptions plain_options;
    plain_options.chunk_rows = 4;
    ColumnarWriter writer(path("plain_ref.fac"), plain_options);
    write_columnar(db, writer);
    writer.finish();
  }
  const SalvageScan plain_ref = scan_columnar_salvage(path("plain_ref.fac"));
  std::vector<SalvagedChunkRef> plain_ticket_chunks;
  for (const SalvagedChunkRef& ref : plain_ref.chunks) {
    if (ref.table == columnar::Table::kTickets) {
      plain_ticket_chunks.push_back(ref);
    }
  }
  ASSERT_GT(plain_ticket_chunks.size(), k);
  const std::int64_t plain_crash_at = static_cast<std::int64_t>(
      plain_ticket_chunks[k].payload_offset +
      plain_ticket_chunks[k].payload_size / 2);
  ASSERT_TRUE(write_crashed("plain.fac", plain_crash_at, 0));
  const SalvageScan plain = scan_columnar_salvage(path("plain.fac"));
  EXPECT_FALSE(plain.checkpoint_seen);
  EXPECT_FALSE(plain.windows_recovered);
}

// ---- degraded (lenient) reads ----

TEST_F(RecoveryTest, LenientReadEqualsStrictReadOnUndamagedFileAtAnyThreads) {
  ASSERT_FALSE(write_with_crash(torture_db(), "clean.fac", -1));

  std::string report_1threads;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool::set_default_thread_count(threads);
    DegradedReadReport report;
    const TraceDatabase lenient =
        load_columnar_lenient(path("clean.fac"), report);
    EXPECT_FALSE(report.degraded());
    EXPECT_EQ(report.total_rows_skipped(), 0u);

    const TraceDatabase strict = load_columnar(path("clean.fac"));
    EXPECT_EQ(lenient.servers().size(), strict.servers().size());
    EXPECT_EQ(lenient.tickets().size(), strict.tickets().size());
    for (std::size_t i = 0; i < strict.tickets().size(); ++i) {
      ASSERT_EQ(lenient.tickets()[i].id, strict.tickets()[i].id);
      ASSERT_EQ(lenient.tickets()[i].opened, strict.tickets()[i].opened);
      ASSERT_EQ(lenient.tickets()[i].description,
                strict.tickets()[i].description);
    }

    DegradedReadReport summary_report;
    EXPECT_EQ(analysis::summarize_columnar(path("clean.fac"), true,
                                           &summary_report),
              analysis::summarize_columnar(path("clean.fac")));
    EXPECT_FALSE(summary_report.degraded());

    if (threads == 1) {
      report_1threads = report.to_string();
    } else {
      EXPECT_EQ(report.to_string(), report_1threads)
          << "degraded-read report depends on thread count";
    }
  }
  ThreadPool::set_default_thread_count(0);
}

TEST_F(RecoveryTest, LenientReadSkipsDamagedChunksAndReportsThem) {
  ASSERT_FALSE(write_with_crash(torture_db(), "clean.fac", -1));
  std::string bytes = read_file(dir_ / "clean.fac");

  // Corrupt one mid-file ticket chunk payload; the footer still parses.
  ChunkReader clean(path("clean.fac"));
  const std::size_t tick_chunks =
      clean.chunk_count(columnar::Table::kTickets);
  ASSERT_GT(tick_chunks, 2u);
  const columnar::ChunkInfo& victim =
      clean.chunk_info(columnar::Table::kTickets, 1);
  bytes[victim.offset + victim.size / 2] ^= 0x01;
  write_file(dir_ / "bad.fac", bytes);

  EXPECT_THROW(load_columnar(path("bad.fac")), Error);

  DegradedReadReport report;
  const TraceDatabase lenient = load_columnar_lenient(path("bad.fac"), report);
  EXPECT_TRUE(report.degraded());
  const auto t = static_cast<std::size_t>(columnar::Table::kTickets);
  EXPECT_EQ(report.chunks_skipped[t], 1u);
  EXPECT_EQ(report.rows_skipped[t], victim.rows);
  EXPECT_EQ(report.by_defect[static_cast<std::size_t>(
                ReadDefect::kChecksumMismatch)],
            1u);
  EXPECT_EQ(lenient.tickets().size(),
            clean.row_count(columnar::Table::kTickets) - victim.rows);
  EXPECT_NE(report.to_string().find("PARTIAL DATA"), std::string::npos);

  // Out-of-core analysis degrades the same way instead of throwing.
  DegradedReadReport summary_report;
  const analysis::OutOfCoreSummary partial =
      analysis::summarize_columnar(path("bad.fac"), true, &summary_report);
  EXPECT_TRUE(summary_report.degraded());
  EXPECT_EQ(partial.tickets,
            clean.row_count(columnar::Table::kTickets) - victim.rows);
}

// ---- located errors (satellite: table/chunk/offset in the message) ----

TEST_F(RecoveryTest, ChunkErrorNamesTableChunkAndOffset) {
  ASSERT_FALSE(write_with_crash(torture_db(), "clean.fac", -1));
  std::string bytes = read_file(dir_ / "clean.fac");
  ChunkReader clean(path("clean.fac"));
  const columnar::ChunkInfo& victim =
      clean.chunk_info(columnar::Table::kServers, 0);
  bytes[victim.offset + victim.size / 2] ^= 0x01;
  write_file(dir_ / "bad.fac", bytes);

  ChunkReader reader(path("bad.fac"));
  try {
    reader.chunk(columnar::Table::kServers, 0);
    FAIL() << "expected ChunkError";
  } catch (const ChunkError& e) {
    EXPECT_EQ(e.table(), columnar::Table::kServers);
    EXPECT_EQ(e.index(), 0u);
    EXPECT_EQ(e.offset(), victim.offset);
    EXPECT_EQ(e.defect(), ReadDefect::kChecksumMismatch);
    const std::string expected_prefix =
        "columnar: " + path("bad.fac") + ": servers chunk 0 at offset " +
        std::to_string(victim.offset) + " (" + std::to_string(victim.size) +
        " B): ";
    EXPECT_EQ(std::string(e.what()).rfind(expected_prefix, 0), 0u)
        << "message '" << e.what() << "' does not start with '"
        << expected_prefix << "'";
  }

  // The truncation defect renders with the same location format.
  const ChunkError truncated("t.fac", columnar::Table::kTickets, 3, 4096, 512,
                             ReadDefect::kTruncated,
                             "chunk range escapes the file");
  EXPECT_STREQ(truncated.what(),
               "columnar: t.fac: tickets chunk 3 at offset 4096 (512 B): "
               "chunk range escapes the file");
  EXPECT_EQ(truncated.defect(), ReadDefect::kTruncated);
}

// ---- mmap-failure fallback (satellite: forced buffered mode) ----

TEST_F(RecoveryTest, CallerSuppliedFileForcesBufferedModeWithEqualResults) {
  ASSERT_FALSE(write_with_crash(torture_db(), "clean.fac", -1));

  ChunkReader mapped(path("clean.fac"), /*use_mmap=*/true);
  ASSERT_TRUE(mapped.mmapped());
  // The caller-supplied-file constructor is the path taken when mmap is
  // unavailable: it must serve byte-identical chunks.
  ChunkReader buffered(
      std::make_unique<io::PosixReadableFile>(path("clean.fac")));
  EXPECT_FALSE(buffered.mmapped());

  for (columnar::Table t : columnar::kAllTables) {
    ASSERT_EQ(buffered.chunk_count(t), mapped.chunk_count(t));
    for (std::size_t c = 0; c < mapped.chunk_count(t); ++c) {
      EXPECT_EQ(buffered.chunk_info(t, c).checksum,
                mapped.chunk_info(t, c).checksum);
      const columnar::ChunkView va = mapped.chunk(t, c);
      const columnar::ChunkView vb = buffered.chunk(t, c);
      ASSERT_EQ(va.rows(), vb.rows());
    }
  }
  EXPECT_EQ(buffered.next_incident(), mapped.next_incident());
}

// ---- determinism (acceptance: salvage reports bit-identical at 1 vs 8) ----

TEST_F(RecoveryTest, SalvageReportsAreThreadCountInvariant) {
  const TraceDatabase& db = torture_db();
  ASSERT_FALSE(write_with_crash(db, "ref.fac", -1));
  const std::string reference = read_file(dir_ / "ref.fac");
  ASSERT_TRUE(write_with_crash(
      db, "crashed.fac", static_cast<std::int64_t>(reference.size() / 2)));

  std::string scan_text, report_text, recovered_bytes;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool::set_default_thread_count(threads);
    const std::string out = "rec" + std::to_string(threads) + ".fac";
    const SalvageScan scan = scan_columnar_salvage(path("crashed.fac"));
    const SalvageReport report = recover_columnar(path("crashed.fac"),
                                                  path(out));
    if (threads == 1) {
      scan_text = scan.to_string();
      report_text = report.to_string();
      recovered_bytes = read_file(dir_ / out);
      ASSERT_GT(report.rows_recovered, 0u);
    } else {
      EXPECT_EQ(scan.to_string(), scan_text);
      EXPECT_EQ(report.to_string(), report_text);
      EXPECT_EQ(read_file(dir_ / out), recovered_bytes)
          << "recovered file depends on thread count";
    }
  }
  ThreadPool::set_default_thread_count(0);
}

}  // namespace
}  // namespace fa::trace
