#include "src/detect/health.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/detect/serve.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"

namespace fa::detect {
namespace {

// A small hand-built fleet header for driving the sinks directly.
trace::StreamMeta tiny_meta() {
  trace::StreamMeta meta;
  meta.window = ticket_window();
  meta.server_count = 10;
  meta.servers_by_type = {5, 5};
  meta.servers_by_subsystem = {2, 2, 2, 2, 2};
  return meta;
}

trace::StreamEvent crash_event(std::int32_t ticket_id, std::int32_t incident,
                               std::int32_t server, double day) {
  trace::StreamEvent e;
  e.kind = trace::StreamEventKind::kTicket;
  e.at = ticket_window().begin + from_days(day);
  e.machine_type = trace::MachineType::kPhysical;
  e.ticket.id = trace::TicketId{ticket_id};
  e.ticket.incident = trace::IncidentId{incident};
  e.ticket.server = trace::ServerId{server};
  e.ticket.subsystem = 0;
  e.ticket.is_crash = true;
  e.ticket.true_class = trace::FailureClass::kSoftware;
  e.ticket.opened = e.at;
  e.ticket.closed = e.at + from_hours(2.0);
  return e;
}

// Records what reaches the inner end of a sink chain.
struct CountingSink final : trace::StreamSink {
  std::uint64_t begun = 0;
  std::vector<TimePoint> arrivals;
  TimePoint finished = -1;
  void begin(const trace::StreamMeta&) override { ++begun; }
  void on_event(const trace::StreamEvent& event) override {
    arrivals.push_back(event.at);
  }
  void finish(TimePoint stream_end) override { finished = stream_end; }
};

TEST(ThrottledSink, RejectsNegativeServiceTime) {
  CountingSink inner;
  ThrottleSpec bad;
  bad.service_minutes = -1;
  EXPECT_THROW((ThrottledSink{inner, bad, "t"}), Error);
}

TEST(ThrottledSink, ForwardsEventsUnchangedAndCountsBackpressure) {
  CountingSink inner;
  ThrottleSpec spec;
  spec.service_minutes = 60;
  ThrottledSink sink(inner, spec, "t");
  sink.begin(tiny_meta());
  // Five arrivals 10 sim-minutes apart against a 60-minute service time:
  // the virtual queue grows by one per arrival and waits grow by 50.
  const TimePoint t0 = ticket_window().begin + from_days(1.0);
  for (int k = 0; k < 5; ++k) {
    trace::StreamEvent e = crash_event(k + 1, k + 1, k, 1.0);
    e.at = t0 + 10 * k;
    e.ticket.opened = e.at;
    e.ticket.closed = e.at + from_hours(2.0);
    sink.on_event(e);
  }
  ASSERT_EQ(inner.arrivals.size(), 5u);
  EXPECT_EQ(inner.arrivals.front(), t0);       // forwarded unchanged
  EXPECT_EQ(inner.arrivals.back(), t0 + 40);

  const BackpressureStats& bp = sink.stats();
  EXPECT_EQ(bp.events, 5u);
  EXPECT_EQ(bp.delayed, 4u);                    // only the first had no wait
  EXPECT_EQ(bp.max_wait, 200);                  // 4 * (60 - 10)
  EXPECT_EQ(bp.total_wait, 0 + 50 + 100 + 150 + 200);
  EXPECT_EQ(bp.max_queue_depth, 5u);
  EXPECT_EQ(bp.queue_depth.count, 5u);
  EXPECT_DOUBLE_EQ(bp.queue_depth.max, 5.0);
  EXPECT_DOUBLE_EQ(bp.wait_minutes.max, 200.0);
  EXPECT_EQ(sink.queue_depth_at(t0 + 40), 5u);  // all still in service
  EXPECT_EQ(sink.queue_depth_at(t0 + 60), 4u);  // first completion done
  EXPECT_EQ(sink.queue_depth_at(t0 + 1000), 0u);

  sink.finish(t0 + from_days(1.0));
  EXPECT_EQ(inner.finished, t0 + from_days(1.0));
}

TEST(ThrottledSink, ZeroServiceTimeIsTransparent) {
  CountingSink inner;
  ThrottledSink sink(inner, ThrottleSpec{}, "t");
  sink.begin(tiny_meta());
  sink.on_event(crash_event(1, 1, 0, 2.0));
  sink.on_event(crash_event(2, 2, 1, 3.0));
  EXPECT_EQ(inner.arrivals.size(), 2u);
  EXPECT_EQ(sink.stats().events, 0u);  // the model is disabled entirely
  EXPECT_EQ(sink.stats().queue_depth.count, 0u);
}

TEST(OnlineDetector, LagHistogramsTrackDisorderedArrivals) {
  DetectorOptions options;
  options.out_of_order = OutOfOrderPolicy::kBuffer;
  options.reorder_slack = 2 * kMinutesPerDay;
  OnlineDetector detector(options);
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 0, 10.0));
  detector.on_event(crash_event(3, 3, 2, 12.0));
  detector.on_event(crash_event(2, 2, 1, 11.0));  // one day late
  const OnlineDetector::LiveStats live = detector.live_stats();
  EXPECT_EQ(live.reordered_buffered, 1u);
  EXPECT_EQ(live.event_lag.count, 3u);
  EXPECT_DOUBLE_EQ(live.event_lag.max,
                   static_cast<double>(kMinutesPerDay));  // the late arrival
  // The day-12 arrival released day 10 past the slack horizon; days 11
  // and 12 are still held until the frontier moves on.
  EXPECT_EQ(live.ooo_pending, 2u);
  EXPECT_EQ(live.ooo_occupancy.count, 3u);
  EXPECT_DOUBLE_EQ(live.ooo_occupancy.max, 2.0);  // two events in flight

  detector.finish(ticket_window().begin + from_days(20.0));
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.reordered_buffered, 1u);
  EXPECT_EQ(report.event_lag.count, 3u);
  EXPECT_DOUBLE_EQ(report.event_lag.max,
                   static_cast<double>(kMinutesPerDay));
  // The buffered events are released during finish(), so the watermark-lag
  // histogram saw the hold time of the late event.
  EXPECT_EQ(report.watermark_lag.count, 3u);
  EXPECT_GE(report.watermark_lag.max,
            static_cast<double>(kMinutesPerDay));
}

TEST(OnlineDetector, InOrderStreamHasZeroLag) {
  OnlineDetector detector{DetectorOptions{}};
  detector.begin(tiny_meta());
  for (int i = 0; i < 5; ++i) {
    detector.on_event(crash_event(i + 1, i + 1, i, 10.0 + 2.0 * i));
  }
  detector.finish(ticket_window().begin + from_days(30.0));
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.event_lag.count, 5u);
  EXPECT_DOUBLE_EQ(report.event_lag.max, 0.0);
  EXPECT_DOUBLE_EQ(report.event_lag.quantile(0.99), 0.0);
  EXPECT_DOUBLE_EQ(report.watermark_lag.max, 0.0);
  EXPECT_EQ(report.ooo_occupancy.count, 0u);  // kReject never buffers
}

TEST(OnlineDetector, DetectionLagRecordsOnsetOfRateAlerts) {
  OnlineDetector detector{DetectorOptions{}};
  detector.begin(tiny_meta());
  // Warmup baseline: one crash every other day arms the aggregate channel
  // (>= 24 incidents inside the 8-week warmup).
  int id = 0;
  for (int i = 0; i < 28; ++i) {
    detector.on_event(crash_event(++id, id, i % 10, 1.0 + 2.0 * i));
  }
  // Post-warmup burst: 20 crashes/day is a ~40x rate step, which walks the
  // CUSUM past the threshold within a couple of ticks.
  for (int day = 0; day < 6; ++day) {
    for (int k = 0; k < 20; ++k) {
      detector.on_event(
          crash_event(++id, id, k % 10, 60.0 + day + 0.04 * k));
    }
  }
  detector.finish(ticket_window().begin + from_days(70.0));
  const DetectorReport& report = detector.report();
  ASSERT_FALSE(report.alerts.empty());
  ASSERT_GE(report.detection_lag.count, 1u);
  // Onset is the start of the tick where the CUSUM left zero, so the lag
  // is at least one full tick and bounded by the burst length.
  EXPECT_GE(report.detection_lag.max,
            static_cast<double>(kMinutesPerDay));
  EXPECT_LE(report.detection_lag.max, static_cast<double>(from_days(7.0)));
  bool found_onset = false;
  for (const Alert& alert : report.alerts) {
    if (alert.kind == AlertKind::kRateShift && alert.onset_lag > 0) {
      found_onset = true;
    }
  }
  EXPECT_TRUE(found_onset);
}

TEST(HealthMonitor, RequiresCadenceAndEmitter) {
  OnlineDetector detector{DetectorOptions{}};
  EXPECT_THROW((HealthMonitor{detector, detector, nullptr, HealthOptions{},
                              "t", [](const Heartbeat&) {}}),
               Error);
  HealthOptions options;
  options.every = kMinutesPerDay;
  EXPECT_THROW(
      (HealthMonitor{detector, detector, nullptr, options, "t", nullptr}),
      Error);
}

TEST(HealthMonitor, EmitsOnBoundariesAndAtFinish) {
  OnlineDetector detector{DetectorOptions{}};
  std::vector<Heartbeat> beats;
  HealthOptions options;
  options.every = from_days(30.0);
  HealthMonitor monitor(detector, detector, nullptr, options, "hm",
                        [&beats](const Heartbeat& hb) {
                          beats.push_back(hb);
                        });
  monitor.begin(tiny_meta());
  monitor.on_event(crash_event(1, 1, 0, 10.0));
  monitor.on_event(crash_event(2, 2, 1, 40.0));  // crosses day 30
  monitor.on_event(crash_event(3, 3, 2, 70.0));  // crosses day 60
  monitor.finish(ticket_window().begin + from_days(80.0));

  ASSERT_EQ(beats.size(), 3u);
  EXPECT_EQ(beats[0].at, ticket_window().begin + from_days(30.0));
  EXPECT_EQ(beats[1].at, ticket_window().begin + from_days(60.0));
  EXPECT_EQ(beats[2].at, ticket_window().begin + from_days(80.0));
  for (std::size_t i = 0; i < beats.size(); ++i) {
    EXPECT_EQ(beats[i].seq, i);
  }
  // A boundary snapshot fires before the crossing event is forwarded: the
  // day-30 snapshot has seen only the first crash.
  double events = -1.0;
  const std::string_view det0 = heartbeat_object(beats[0].line, "det");
  ASSERT_TRUE(heartbeat_number(det0, "events", events));
  EXPECT_DOUBLE_EQ(events, 1.0);
  // The final snapshot runs after the inner finish, so it covers the
  // whole stream.
  const std::string_view det2 = heartbeat_object(beats[2].line, "det");
  ASSERT_TRUE(heartbeat_number(det2, "events", events));
  EXPECT_DOUBLE_EQ(events, 3.0);
}

TEST(Heartbeat, LineRoundTripsThroughExtractors) {
  OnlineDetector detector{DetectorOptions{}};
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 3, 10.0));
  const std::string line =
      heartbeat_line("tenant-x", ticket_window().begin + from_days(12.0), 4,
                     detector.live_stats(), nullptr, 1.25);

  std::string tenant;
  ASSERT_TRUE(heartbeat_string(line, "tenant", tenant));
  EXPECT_EQ(tenant, "tenant-x");
  double value = 0.0;
  ASSERT_TRUE(heartbeat_number(line, "seq", value));
  EXPECT_DOUBLE_EQ(value, 4.0);

  const std::string_view det = heartbeat_object(line, "det");
  ASSERT_FALSE(det.empty());
  ASSERT_TRUE(heartbeat_number(det, "crash_tickets", value));
  EXPECT_DOUBLE_EQ(value, 1.0);
  const std::string_view queue = heartbeat_object(det, "queue");
  ASSERT_FALSE(queue.empty());
  ASSERT_TRUE(heartbeat_number(queue, "depth", value));
  EXPECT_DOUBLE_EQ(value, 0.0);

  const auto strata = heartbeat_items(heartbeat_array(det, "strata"));
  ASSERT_FALSE(strata.empty());
  std::string name;
  ASSERT_TRUE(heartbeat_string(strata.front(), "name", name));
  EXPECT_EQ(name, "all");
  ASSERT_TRUE(heartbeat_number(strata.front(), "crashes", value));
  EXPECT_DOUBLE_EQ(value, 1.0);

  ASSERT_TRUE(heartbeat_number(heartbeat_object(line, "timing"), "wall_ms",
                               value));
  EXPECT_DOUBLE_EQ(value, 1.25);
  EXPECT_TRUE(heartbeat_object(line, "no_such_key").empty());
  EXPECT_FALSE(heartbeat_number(det, "no_such_key", value));
}

TEST(Heartbeat, DetPrefixStripsOnlyWallClock) {
  OnlineDetector detector{DetectorOptions{}};
  detector.begin(tiny_meta());
  const auto live = detector.live_stats();
  const std::string a = heartbeat_line("t", 100, 0, live, nullptr, 1.0);
  const std::string b = heartbeat_line("t", 100, 0, live, nullptr, 99.5);
  EXPECT_NE(a, b);
  EXPECT_EQ(heartbeat_det_prefix(a), heartbeat_det_prefix(b));
  EXPECT_EQ(a.find(heartbeat_det_prefix(a)), 0u);
}

class ServeHealthTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::set_default_thread_count(0); }

  static std::vector<TenantSpec> specs_with_throttle() {
    std::vector<TenantSpec> specs(3);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      specs[i].name = "tenant-" + std::to_string(i);
      specs[i].config =
          sim::SimulationConfig::paper_defaults().scaled(0.1);
      specs[i].config.seed = 11 + i;
    }
    specs[1].throttle.service_minutes = 30;
    return specs;
  }
};

TEST_F(ServeHealthTest, BackpressureHitsOnlyThrottledTenants) {
  const auto served = serve_tenants(specs_with_throttle());
  ASSERT_EQ(served.size(), 3u);
  EXPECT_EQ(served[0].backpressure.events, 0u);
  EXPECT_EQ(served[2].backpressure.events, 0u);
  EXPECT_GT(served[1].backpressure.events, 0u);
  EXPECT_GT(served[1].backpressure.delayed, 0u);
  EXPECT_GT(served[1].backpressure.max_queue_depth, 0u);
  // The throttle forwards events unchanged, so detection is unaffected:
  // same seed + config => same report as the unthrottled twin.
  auto twin = specs_with_throttle();
  twin[1].throttle.service_minutes = 0;
  const auto plain = serve_tenants(twin);
  EXPECT_EQ(served[1].report.alert_log(), plain[1].report.alert_log());
  EXPECT_EQ(served[1].report.events, plain[1].report.events);
}

TEST_F(ServeHealthTest, HeartbeatDetSectionsAreThreadCountInvariant) {
  HealthOptions health;
  health.every = from_days(60.0);

  ThreadPool::set_default_thread_count(1);
  const auto serial = serve_tenants(specs_with_throttle(), {}, health);
  ThreadPool::set_default_thread_count(8);
  const auto parallel = serve_tenants(specs_with_throttle(), {}, health);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t t = 0; t < serial.size(); ++t) {
    ASSERT_FALSE(serial[t].heartbeats.empty());
    ASSERT_EQ(serial[t].heartbeats.size(), parallel[t].heartbeats.size());
    for (std::size_t i = 0; i < serial[t].heartbeats.size(); ++i) {
      const Heartbeat& a = serial[t].heartbeats[i];
      const Heartbeat& b = parallel[t].heartbeats[i];
      EXPECT_EQ(a.at, b.at);
      EXPECT_EQ(a.seq, b.seq);
      EXPECT_EQ(heartbeat_det_prefix(a.line), heartbeat_det_prefix(b.line))
          << serial[t].name << " heartbeat " << i;
    }
  }
  // The throttled tenant's heartbeats carry live queue state.
  const std::string& last = serial[1].heartbeats.back().line;
  const std::string_view queue =
      heartbeat_object(heartbeat_object(last, "det"), "queue");
  double delayed = 0.0;
  ASSERT_TRUE(heartbeat_number(queue, "delayed", delayed));
  EXPECT_GT(delayed, 0.0);
}

}  // namespace
}  // namespace fa::detect
