// Sparse classification fast path: CSR feature extraction and the
// bound-pruned sparse k-means overload must reproduce the dense reference
// implementation exactly — same nonzero weights, same cluster assignments,
// same labels and accuracy — at any thread count.
#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/classification.h"
#include "src/stats/kmeans.h"
#include "src/stats/sparse_matrix.h"
#include "src/text/features.h"
#include "src/text/vocabulary.h"
#include "src/util/error.h"
#include "src/util/strings.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace fa {
namespace {

const std::vector<std::string> kCorpus = {
    "disk failed disk replaced",
    "disk error on server",
    "network switch rebooted",
    "network cable replaced",
    "quantum blockchain nonsense",  // no vocabulary word at mdf >= 2
};

text::Vectorizer fit_corpus(int min_df = 2) {
  text::VectorizerOptions options;
  options.min_document_frequency = min_df;
  return text::Vectorizer::fit(kCorpus, options);
}

TEST(SparseMatrix, RoundTripAndNorms) {
  stats::SparseMatrix m(5);
  const std::vector<std::uint32_t> idx = {1, 4};
  const std::vector<double> val = {2.0, -3.0};
  m.append_row(idx, val);
  m.append_row({}, {});  // empty row
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 5u);
  EXPECT_EQ(m.nonzeros(), 2u);
  EXPECT_DOUBLE_EQ(m.row_norm_sq(0), 13.0);
  EXPECT_DOUBLE_EQ(m.row_norm_sq(1), 0.0);
  EXPECT_EQ(m.row(1).size(), 0u);
  const auto dense = m.row_dense(0);
  EXPECT_EQ(dense, (std::vector<double>{0.0, 2.0, 0.0, 0.0, -3.0}));
  const std::vector<double> y = {1.0, 10.0, 100.0, 1000.0, 10000.0};
  EXPECT_DOUBLE_EQ(m.dot_dense(0, y), 2.0 * 10.0 - 3.0 * 10000.0);
}

TEST(SparseMatrix, RejectsMalformedRows) {
  stats::SparseMatrix m(3);
  const std::vector<double> one = {1.0};
  EXPECT_THROW(m.append_row(std::vector<std::uint32_t>{3}, one), Error);
  EXPECT_THROW(m.append_row(std::vector<std::uint32_t>{1, 1},
                            std::vector<double>{1.0, 2.0}),
               Error);
  EXPECT_THROW(m.append_row(std::vector<std::uint32_t>{2, 1},
                            std::vector<double>{1.0, 2.0}),
               Error);
  EXPECT_THROW(m.append_row(std::vector<std::uint32_t>{0, 1}, one), Error);
}

TEST(SparseFeatures, CsrMatchesDenseTransformBitForBit) {
  const auto v = fit_corpus();
  const auto dense = v.transform_all(kCorpus);
  const auto sparse = v.transform_all_sparse(kCorpus);
  ASSERT_EQ(sparse.rows(), kCorpus.size());
  ASSERT_EQ(sparse.cols(), v.dimension());
  const auto round_trip = sparse.to_dense();
  for (std::size_t i = 0; i < dense.size(); ++i) {
    ASSERT_EQ(round_trip[i].size(), dense[i].size());
    for (std::size_t d = 0; d < dense[i].size(); ++d) {
      // Bit-identical, not just close: the sparse path must be a drop-in
      // replacement wherever the dense weights fed comparisons.
      EXPECT_EQ(round_trip[i][d], dense[i][d]) << "doc " << i << " dim " << d;
    }
  }
}

TEST(SparseFeatures, RowNormsMatchWeights) {
  const auto v = fit_corpus();
  const auto sparse = v.transform_all_sparse(kCorpus);
  for (std::size_t i = 0; i < sparse.rows(); ++i) {
    const auto row = sparse.row(i);
    double norm_sq = 0.0;
    for (std::size_t e = 0; e < row.size(); ++e) {
      norm_sq += row.values[e] * row.values[e];
    }
    EXPECT_DOUBLE_EQ(sparse.row_norm_sq(i), norm_sq);
    // L2-normalized documents have unit norm; empty documents zero.
    if (row.size() > 0) EXPECT_NEAR(sparse.row_norm_sq(i), 1.0, 1e-12);
  }
}

TEST(SparseFeatures, EmptyDocumentYieldsEmptyRow) {
  const auto v = fit_corpus();
  EXPECT_TRUE(v.transform_sparse("quantum blockchain nonsense").empty());
  EXPECT_TRUE(v.transform_sparse("").empty());
  const auto sparse = v.transform_all_sparse(kCorpus);
  EXPECT_EQ(sparse.row(4).size(), 0u);
  EXPECT_DOUBLE_EQ(sparse.row_norm_sq(4), 0.0);
}

// Sparse k-means on well-separated sparse blobs must agree with the dense
// overload run on the densified matrix.
TEST(SparseKMeans, MatchesDenseOnSeparatedSparseBlobs) {
  Rng data_rng(17);
  stats::SparseMatrix points(12);
  for (int c = 0; c < 4; ++c) {
    for (int i = 0; i < 40; ++i) {
      const std::vector<std::uint32_t> idx = {
          static_cast<std::uint32_t>(3 * c),
          static_cast<std::uint32_t>(3 * c + 1)};
      const std::vector<double> val = {5.0 + data_rng.normal(0.0, 0.3),
                                       5.0 + data_rng.normal(0.0, 0.3)};
      points.append_row(idx, val);
    }
  }
  const auto dense = points.to_dense();
  stats::KMeansOptions options;
  options.k = 4;
  Rng r1(23), r2(23);
  const auto dense_run = stats::kmeans(dense, options, r1);
  const auto sparse_run = stats::kmeans(points, options, r2);
  EXPECT_EQ(dense_run.assignment, sparse_run.assignment);
  EXPECT_NEAR(dense_run.inertia, sparse_run.inertia,
              1e-9 * (1.0 + dense_run.inertia));
  ASSERT_EQ(dense_run.centroids.size(), sparse_run.centroids.size());
  for (std::size_t c = 0; c < dense_run.centroids.size(); ++c) {
    for (std::size_t d = 0; d < dense_run.centroids[c].size(); ++d) {
      EXPECT_NEAR(dense_run.centroids[c][d], sparse_run.centroids[c][d], 1e-9);
    }
  }
}

// The anchored 24-cluster crash-extraction configuration, dense vs sparse,
// on the simulated corpus: identical assignments at 1, 2 and 8 threads.
TEST(SparseKMeans, CrashExtractionConfigurationMatchesDense) {
  const auto& db = fa::testing::small_simulated_db();
  std::vector<std::string> corpus;
  corpus.reserve(db.tickets().size());
  for (const auto& t : db.tickets()) corpus.push_back(t.description);
  text::VectorizerOptions vec_options;
  vec_options.min_document_frequency = 3;
  const auto vectorizer = text::Vectorizer::fit(corpus, vec_options);
  const auto dense = vectorizer.transform_all(corpus);
  const auto sparse = vectorizer.transform_all_sparse(corpus);

  stats::KMeansOptions km;
  km.k = 24;
  km.restarts = 3;
  km.anchors.push_back(dense.front());  // anchored, as in crash extraction

  Rng dense_rng(31);
  const auto reference = stats::kmeans(dense, km, dense_rng);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool::set_default_thread_count(threads);
    Rng sparse_rng(31);
    const auto run = stats::kmeans(sparse, km, sparse_rng);
    EXPECT_EQ(run.assignment, reference.assignment) << threads << " threads";
    EXPECT_NEAR(run.inertia, reference.inertia, 1e-9 * (1.0 + reference.inertia))
        << threads << " threads";
  }
  ThreadPool::set_default_thread_count(0);
}

// Dense reference implementation of classify_tickets (the pre-sparse code
// path: dense TF-IDF + dense k-means + identical labeling), used to pin
// that the production sparse path produces the same labels and accuracy.
analysis::ClassificationResult dense_reference_classify(
    std::span<const trace::Ticket* const> tickets,
    const analysis::ClassifierOptions& options, Rng& rng) {
  std::vector<std::string> corpus;
  corpus.reserve(tickets.size());
  for (const trace::Ticket* t : tickets) {
    corpus.push_back(t->description + " " + t->resolution);
  }
  text::VectorizerOptions vec_options;
  vec_options.min_document_frequency = options.min_document_frequency;
  const auto vectorizer = text::Vectorizer::fit(corpus, vec_options);
  const auto features = vectorizer.transform_all(corpus);

  stats::KMeansOptions km;
  km.k = options.clusters;
  km.restarts = options.kmeans_restarts;
  analysis::ClassificationResult result;
  result.clustering = stats::kmeans(features, km, rng);

  std::vector<std::array<int, trace::kFailureClassCount>> votes(
      static_cast<std::size_t>(options.clusters));
  for (auto& v : votes) v.fill(0);
  std::array<double, trace::kFailureClassCount> global{};
  std::size_t labeled = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    if (!rng.bernoulli(options.labeled_fraction)) continue;
    ++labeled;
    global[static_cast<std::size_t>(tickets[i]->true_class)] += 1.0;
    const auto cluster =
        static_cast<std::size_t>(result.clustering.assignment[i]);
    ++votes[cluster][static_cast<std::size_t>(tickets[i]->true_class)];
  }
  for (double& g : global) g = std::max(g / static_cast<double>(labeled), 1e-9);

  std::vector<trace::FailureClass> cluster_label(
      static_cast<std::size_t>(options.clusters), trace::FailureClass::kOther);
  for (std::size_t c = 0; c < votes.size(); ++c) {
    int cluster_total = 0;
    for (int v : votes[c]) cluster_total += v;
    if (cluster_total == 0) continue;
    double best_lift = 1.5;
    for (std::size_t k = 0; k < trace::kFailureClassCount; ++k) {
      if (static_cast<trace::FailureClass>(k) == trace::FailureClass::kOther) {
        continue;
      }
      const double share = static_cast<double>(votes[c][k]) / cluster_total;
      const double lift = share / global[k];
      if (lift > best_lift && share >= 0.40) {
        best_lift = lift;
        cluster_label[c] = static_cast<trace::FailureClass>(k);
      }
    }
  }

  int correct = 0;
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto cluster =
        static_cast<std::size_t>(result.clustering.assignment[i]);
    result.predicted.push_back(cluster_label[cluster]);
    correct += result.predicted.back() == tickets[i]->true_class;
  }
  result.accuracy =
      static_cast<double>(correct) / static_cast<double>(tickets.size());
  return result;
}

TEST(SparseClassification, LabelsAndAccuracyMatchDenseReference) {
  const auto& db = fa::testing::small_simulated_db();
  const auto tickets = analysis::extract_crash_tickets(db);
  Rng dense_rng(8);
  const auto reference = dense_reference_classify(tickets, {}, dense_rng);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool::set_default_thread_count(threads);
    Rng sparse_rng(8);
    const auto result = analysis::classify_tickets(tickets, {}, sparse_rng);
    EXPECT_EQ(result.clustering.assignment, reference.clustering.assignment)
        << threads << " threads";
    EXPECT_EQ(result.predicted, reference.predicted) << threads << " threads";
    EXPECT_DOUBLE_EQ(result.accuracy, reference.accuracy)
        << threads << " threads";
  }
  ThreadPool::set_default_thread_count(0);
}

TEST(SparseClassification, ClusteredExtractionThreadCountInvariant) {
  const auto& db = fa::testing::small_simulated_db();
  ThreadPool::set_default_thread_count(1);
  Rng r1(11);
  const auto reference = analysis::extract_crash_tickets_clustered(db, r1);
  for (const std::size_t threads : {2u, 8u}) {
    ThreadPool::set_default_thread_count(threads);
    Rng rng(11);
    const auto run = analysis::extract_crash_tickets_clustered(db, rng);
    EXPECT_EQ(run.crash_tickets, reference.crash_tickets)
        << threads << " threads";
    EXPECT_DOUBLE_EQ(run.accuracy, reference.accuracy) << threads << " threads";
    EXPECT_DOUBLE_EQ(run.precision, reference.precision)
        << threads << " threads";
    EXPECT_DOUBLE_EQ(run.recall, reference.recall) << threads << " threads";
  }
  ThreadPool::set_default_thread_count(0);
}

// The anchors-fill-k fast path must behave like plain anchored seeding:
// every centroid starts at its anchor and no k-means++ draw happens.
TEST(SparseKMeans, AnchorsFillingAllClustersSkipSeedingDraws) {
  stats::SparseMatrix points(2);
  for (int i = 0; i < 8; ++i) {
    const std::vector<std::uint32_t> idx = {0, 1};
    const std::vector<double> val = {static_cast<double>(i % 2) * 10.0,
                                     static_cast<double>(i / 4) * 10.0};
    points.append_row(idx, val);
  }
  stats::KMeansOptions options;
  options.k = 2;
  options.restarts = 1;
  options.anchors = {{0.0, 0.0}, {10.0, 0.0}};
  Rng r1(5), r2(5);
  const auto sparse_run = stats::kmeans(points, options, r1);
  const auto dense_run = stats::kmeans(points.to_dense(), options, r2);
  EXPECT_EQ(sparse_run.assignment, dense_run.assignment);
  EXPECT_NEAR(sparse_run.inertia, dense_run.inertia, 1e-9);
}

}  // namespace
}  // namespace fa
