#include "src/stats/special.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::stats {
namespace {

TEST(Special, GammaPForShapeOneIsExponentialCdf) {
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0, 20.0}) {
    EXPECT_NEAR(gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << "x=" << x;
  }
}

TEST(Special, GammaPForShapeHalfIsErf) {
  // P(1/2, x) = erf(sqrt(x)).
  for (double x : {0.01, 0.25, 1.0, 4.0, 9.0}) {
    EXPECT_NEAR(gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-12) << "x=" << x;
  }
}

TEST(Special, GammaPBoundaries) {
  EXPECT_DOUBLE_EQ(gamma_p(2.0, 0.0), 0.0);
  EXPECT_NEAR(gamma_p(2.0, 1e6), 1.0, 1e-12);
  EXPECT_THROW(gamma_p(0.0, 1.0), Error);
  EXPECT_THROW(gamma_p(1.0, -1.0), Error);
}

TEST(Special, GammaPQComplementary) {
  for (double a : {0.3, 1.0, 4.5, 20.0}) {
    for (double x : {0.1, 1.0, 5.0, 40.0}) {
      EXPECT_NEAR(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12)
          << "a=" << a << " x=" << x;
    }
  }
}

TEST(Special, GammaPInvRoundTrip) {
  for (double a : {0.4, 1.0, 2.5, 9.0}) {
    for (double p : {0.001, 0.1, 0.5, 0.9, 0.999}) {
      const double x = gamma_p_inv(a, p);
      EXPECT_NEAR(gamma_p(a, x), p, 1e-9) << "a=" << a << " p=" << p;
    }
  }
}

TEST(Special, DigammaKnownValues) {
  constexpr double kEulerGamma = 0.57721566490153286;
  EXPECT_NEAR(digamma(1.0), -kEulerGamma, 1e-10);
  EXPECT_NEAR(digamma(0.5), -kEulerGamma - 2.0 * std::log(2.0), 1e-10);
  // Recurrence psi(x+1) = psi(x) + 1/x.
  for (double x : {0.3, 1.7, 4.2}) {
    EXPECT_NEAR(digamma(x + 1.0), digamma(x) + 1.0 / x, 1e-10) << "x=" << x;
  }
}

TEST(Special, TrigammaKnownValues) {
  constexpr double kPiSquaredOver6 = 1.6449340668482264;
  EXPECT_NEAR(trigamma(1.0), kPiSquaredOver6, 1e-9);
  // Recurrence psi'(x+1) = psi'(x) - 1/x^2.
  for (double x : {0.4, 2.1, 6.5}) {
    EXPECT_NEAR(trigamma(x + 1.0), trigamma(x) - 1.0 / (x * x), 1e-9)
        << "x=" << x;
  }
}

TEST(Special, ErfInvRoundTrip) {
  for (double y : {-0.999, -0.5, -0.01, 0.0, 0.3, 0.9, 0.9999}) {
    EXPECT_NEAR(std::erf(erf_inv(y)), y, 1e-12) << "y=" << y;
  }
  EXPECT_THROW(erf_inv(1.0), Error);
  EXPECT_THROW(erf_inv(-1.0), Error);
}

TEST(Special, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-14);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(Special, NormalQuantileInvertsCdf) {
  for (double p : {0.001, 0.05, 0.25, 0.5, 0.75, 0.99}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-11) << "p=" << p;
  }
  EXPECT_THROW(normal_quantile(0.0), Error);
  EXPECT_THROW(normal_quantile(1.0), Error);
}

}  // namespace
}  // namespace fa::stats
