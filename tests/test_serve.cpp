// Multi-tenant ingestion soak: serving N tenant streams over the shared
// pool must produce, tenant for tenant, exactly the result of running each
// stream alone — no interleaving-dependent state, at any thread count.
#include "src/detect/serve.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/util/thread_pool.h"

namespace fa::detect {
namespace {

std::vector<TenantSpec> mixed_fleet(std::size_t tenants) {
  std::vector<TenantSpec> specs;
  for (std::size_t i = 0; i < tenants; ++i) {
    TenantSpec spec;
    spec.name = "tenant-" + std::to_string(i);
    spec.config = sim::SimulationConfig::paper_defaults().scaled(0.15);
    spec.config.seed = 100 + i;
    switch (i % 3) {
      case 0:  // stationary replay
        break;
      case 1:  // scripted hazard step
        spec.scenario.shifts.push_back(
            {ticket_window().begin + from_days(150 + 10.0 * i), 4.0});
        break;
      case 2:  // tenant disconnecting mid-window
        spec.scenario.cutoff = ticket_window().begin + from_days(200);
        break;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string result_fingerprint(const TenantResult& r) {
  return r.name + "\n" + r.report.to_string() + r.report.alert_log() +
         r.score.to_string();
}

class ServeTest : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::set_default_thread_count(0); }
};

TEST_F(ServeTest, SoakMatchesSingleStreamRuns) {
  const auto specs = mixed_fleet(6);
  const auto served = serve_tenants(specs);
  ASSERT_EQ(served.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    // Results come back in spec order under the tenant's name.
    EXPECT_EQ(served[i].name, specs[i].name);
    EXPECT_GT(served[i].report.events, 0u);
    // The same stream served alone yields the identical report, alert log
    // and score: tenants share nothing but the pool.
    const TenantResult alone = serve_tenant(specs[i]);
    EXPECT_EQ(result_fingerprint(served[i]), result_fingerprint(alone))
        << specs[i].name;
  }
}

TEST_F(ServeTest, TenantIsolationAcrossScenarios) {
  const auto specs = mixed_fleet(6);
  const auto served = serve_tenants(specs);
  ASSERT_EQ(served.size(), 6u);
  // Cutoff tenants stop at their disconnect point; full tenants cover the
  // whole window.
  EXPECT_EQ(served[2].report.stream_end,
            ticket_window().begin + from_days(200));
  EXPECT_EQ(served[0].report.stream_end, ticket_window().end);
  // Shifted tenants carry their scenario's ground truth, stationary ones
  // score trivially.
  EXPECT_EQ(served[1].change_points.size(), 1u);
  EXPECT_EQ(served[0].change_points.size(), 0u);
  EXPECT_EQ(served[0].score.changes, 0u);
  EXPECT_EQ(served[1].score.changes, 1u);
  // Same fleet scale but different seeds: the streams are genuinely
  // different tenants, not copies.
  EXPECT_NE(result_fingerprint(served[0]), result_fingerprint(served[3]));
}

TEST_F(ServeTest, DeterministicAtAnyThreadCount) {
  const auto specs = mixed_fleet(5);
  ThreadPool::set_default_thread_count(1);
  const auto serial = serve_tenants(specs);
  ThreadPool::set_default_thread_count(8);
  const auto parallel = serve_tenants(specs);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(result_fingerprint(serial[i]), result_fingerprint(parallel[i]))
        << specs[i].name;
  }
}

}  // namespace
}  // namespace fa::detect
