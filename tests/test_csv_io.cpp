#include "src/trace/csv_io.h"

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::trace {
namespace {

class CsvIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("fa_csv_io_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir() const { return dir_.string(); }

 private:
  std::filesystem::path dir_;
};

TEST_F(CsvIoTest, RoundTripsSimulatedDatabase) {
  auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.03);
  const TraceDatabase original = fa::sim::simulate(config);
  save_database(original, dir());
  const TraceDatabase loaded = load_database(dir());

  ASSERT_EQ(loaded.servers().size(), original.servers().size());
  ASSERT_EQ(loaded.tickets().size(), original.tickets().size());

  for (std::size_t i = 0; i < original.servers().size(); ++i) {
    const ServerRecord& a = original.servers()[i];
    const ServerRecord& b = loaded.servers()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.subsystem, b.subsystem);
    EXPECT_EQ(a.cpu_count, b.cpu_count);
    EXPECT_EQ(a.disk_count, b.disk_count);
    EXPECT_EQ(a.host_box, b.host_box);
    EXPECT_EQ(a.first_record, b.first_record);
    EXPECT_EQ(a.disk_gb.has_value(), b.disk_gb.has_value());
  }
  for (std::size_t i = 0; i < original.tickets().size(); ++i) {
    const Ticket& a = original.tickets()[i];
    const Ticket& b = loaded.tickets()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.incident, b.incident);
    EXPECT_EQ(a.server, b.server);
    EXPECT_EQ(a.is_crash, b.is_crash);
    EXPECT_EQ(a.true_class, b.true_class);
    EXPECT_EQ(a.opened, b.opened);
    EXPECT_EQ(a.closed, b.closed);
    EXPECT_EQ(a.description, b.description);
    EXPECT_EQ(a.resolution, b.resolution);
  }

  // Monitoring-table round trips, spot-checked per server.
  for (const ServerRecord& s : original.servers()) {
    EXPECT_EQ(loaded.weekly_usage_for(s.id).size(),
              original.weekly_usage_for(s.id).size());
    EXPECT_EQ(loaded.power_events_for(s.id).size(),
              original.power_events_for(s.id).size());
    EXPECT_EQ(loaded.snapshots_for(s.id).size(),
              original.snapshots_for(s.id).size());
  }

  // Incident grouping identical.
  EXPECT_EQ(loaded.incidents().size(), original.incidents().size());
}

TEST_F(CsvIoTest, LoadedDatabaseIsFinalized) {
  auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.02);
  const TraceDatabase original = fa::sim::simulate(config);
  save_database(original, dir());
  const TraceDatabase loaded = load_database(dir());
  EXPECT_TRUE(loaded.finalized());
  EXPECT_FALSE(loaded.crash_tickets().empty());
}

TEST_F(CsvIoTest, CustomWindowsRoundTrip) {
  TraceDatabase db;
  const ObservationWindow monitoring{0, 1000 * kMinutesPerDay};
  const ObservationWindow ticket{100 * kMinutesPerDay,
                                 600 * kMinutesPerDay};
  const ObservationWindow onoff{200 * kMinutesPerDay, 260 * kMinutesPerDay};
  db.set_windows(ticket, monitoring, onoff);
  ServerRecord s;
  s.type = MachineType::kPhysical;
  db.add_server(s);
  db.finalize();

  save_database(db, dir());
  const TraceDatabase loaded = load_database(dir());
  EXPECT_EQ(loaded.window().begin, ticket.begin);
  EXPECT_EQ(loaded.window().end, ticket.end);
  EXPECT_EQ(loaded.monitoring().end, monitoring.end);
  EXPECT_EQ(loaded.onoff_tracking().begin, onoff.begin);
}

TEST_F(CsvIoTest, MissingMetaFallsBackToPaperWindows) {
  auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.02);
  save_database(fa::sim::simulate(config), dir());
  std::filesystem::remove(dir() + "/meta.csv");
  const TraceDatabase loaded = load_database(dir());
  EXPECT_EQ(loaded.window().begin, ticket_window().begin);
  EXPECT_EQ(loaded.onoff_tracking().end, onoff_window().end);
}

TEST_F(CsvIoTest, SetWindowsValidation) {
  TraceDatabase db;
  const ObservationWindow monitoring{0, 100};
  // Ticket window escaping monitoring coverage.
  EXPECT_THROW(db.set_windows({50, 200}, monitoring, {60, 70}), Error);
  // On/off window escaping the ticket window.
  EXPECT_THROW(db.set_windows({10, 90}, monitoring, {80, 95}), Error);
  // Empty window.
  EXPECT_THROW(db.set_windows({50, 50}, monitoring, {60, 70}), Error);
  // After finalize.
  db.finalize();
  EXPECT_THROW(db.set_windows({10, 90}, monitoring, {20, 30}), Error);
}

TEST_F(CsvIoTest, MissingDirectoryThrows) {
  EXPECT_THROW(load_database(dir() + "/nonexistent"), Error);
}

class CsvInjectionTest : public CsvIoTest {
 protected:
  void SetUp() override {
    CsvIoTest::SetUp();
    auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.02);
    save_database(fa::sim::simulate(config), dir());
  }

  // Appends a raw row to one of the CSV files.
  void inject(const std::string& file, const std::string& row) {
    std::ofstream out(dir() + "/" + file, std::ios::app);
    out << row << "\n";
  }
};

TEST_F(CsvInjectionTest, DanglingTicketServerRejected) {
  inject("tickets.csv",
         "999999,0,999999,0,1,software,1000,2000,server unresponsive,fixed");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvInjectionTest, UnknownFailureClassRejected) {
  inject("tickets.csv",
         "999999,,0,0,0,gremlins,1000,2000,desc,res");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvInjectionTest, ClosedBeforeOpenedRejected) {
  inject("tickets.csv",
         "999999,,0,0,0,other,2000,1000,desc,res");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvInjectionTest, NonContiguousServerIdRejected) {
  inject("servers.csv", "999999,PM,0,4,8.000,,,,0");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvInjectionTest, MalformedNumberRejected) {
  inject("weekly_usage.csv", "0,notaweek,10.0,10.0,,");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvInjectionTest, ShortRowRejected) {
  inject("snapshots.csv", "0,1");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvInjectionTest, InvalidConsolidationRejected) {
  // Snapshot rows must carry consolidation >= 1 (finalize validation).
  inject("snapshots.csv", "0,1,0,0");
  EXPECT_THROW(load_database(dir()), Error);
}

TEST_F(CsvIoTest, CorruptHeaderThrows) {
  auto config = fa::sim::SimulationConfig::paper_defaults().scaled(0.02);
  const TraceDatabase original = fa::sim::simulate(config);
  save_database(original, dir());
  // Clobber the servers.csv header.
  std::ofstream out(dir() + "/servers.csv");
  out << "bogus,header\n";
  out.close();
  EXPECT_THROW(load_database(dir()), Error);
}

TEST(ExpectHeader, ReportsExpectedActualAndDifferingColumn) {
  std::istringstream in("id,type,wrong,cpu_count\n");
  CsvReader reader(in);
  try {
    expect_header(reader, {"id", "type", "subsystem", "cpu_count"}, "x.csv");
    FAIL() << "expect_header should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("x.csv"), std::string::npos) << msg;
    EXPECT_NE(msg.find("[id,type,subsystem,cpu_count]"), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("[id,type,wrong,cpu_count]"), std::string::npos)
        << msg;
    // Pinpoints the first differing column by index and both spellings.
    EXPECT_NE(msg.find("column 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("subsystem"), std::string::npos) << msg;
    EXPECT_NE(msg.find("wrong"), std::string::npos) << msg;
  }
}

TEST(ExpectHeader, ReportsMissingColumns) {
  std::istringstream in("id,type\n");
  CsvReader reader(in);
  try {
    expect_header(reader, {"id", "type", "subsystem"}, "y.csv");
    FAIL() << "expect_header should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("missing"), std::string::npos) << msg;
    EXPECT_NE(msg.find("subsystem"), std::string::npos) << msg;
  }
}

TEST(ExpectHeader, ReportsExtraColumns) {
  std::istringstream in("id,type,extra\n");
  CsvReader reader(in);
  try {
    expect_header(reader, {"id", "type"}, "z.csv");
    FAIL() << "expect_header should have thrown";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("extra"), std::string::npos) << msg;
  }
}

TEST(ExpectHeader, AcceptsMatchingHeader) {
  std::istringstream in("id,type\n1,PM\n");
  CsvReader reader(in);
  EXPECT_NO_THROW(expect_header(reader, {"id", "type"}, "ok.csv"));
  std::vector<std::string> row;
  ASSERT_TRUE(reader.read_row(row));  // header consumed, data remains
  EXPECT_EQ(row[0], "1");
}

}  // namespace
}  // namespace fa::trace
