#include "src/analysis/transitions.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

const ClassLookup kTruth = [](const trace::Ticket& t) {
  return t.true_class;
};

TEST(Transitions, ExactCountsOnHandBuiltTrace) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  // power -> (2 days) software -> (40 days) hardware.
  b.add_crash(pm, 10.0, 1.0, trace::FailureClass::kPower);
  b.add_crash(pm, 12.0, 1.0, trace::FailureClass::kSoftware);
  b.add_crash(pm, 52.0, 1.0, trace::FailureClass::kHardware);
  const auto db = b.finish();

  const auto result = analyze_transitions(db, db.crash_tickets(), kTruth,
                                          kMinutesPerWeek);
  const auto power = static_cast<std::size_t>(trace::FailureClass::kPower);
  const auto sw = static_cast<std::size_t>(trace::FailureClass::kSoftware);
  EXPECT_EQ(result.counts[power][sw], 1);
  EXPECT_DOUBLE_EQ(result.probability[power][sw], 1.0);
  EXPECT_DOUBLE_EQ(result.followup_probability[power], 1.0);
  // The software failure's next event was 40 days away: no weekly follow-up.
  EXPECT_DOUBLE_EQ(result.followup_probability[sw], 0.0);
}

TEST(Transitions, CensoringExcludesWindowOverrun) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 364.0, 1.0, trace::FailureClass::kPower);  // near year end
  const auto db = b.finish();
  const auto result = analyze_transitions(db, db.crash_tickets(), kTruth,
                                          kMinutesPerWeek);
  const auto power = static_cast<std::size_t>(trace::FailureClass::kPower);
  EXPECT_DOUBLE_EQ(result.followup_probability[power], 0.0);
}

TEST(Transitions, CrossServerEventsDoNotChain) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  b.add_crash(pm1, 10.0, 1.0, trace::FailureClass::kPower);
  b.add_crash(pm2, 10.5, 1.0, trace::FailureClass::kSoftware);
  const auto db = b.finish();
  const auto result = analyze_transitions(db, db.crash_tickets(), kTruth,
                                          kMinutesPerWeek);
  const auto power = static_cast<std::size_t>(trace::FailureClass::kPower);
  EXPECT_DOUBLE_EQ(result.followup_probability[power], 0.0);
}

TEST(Transitions, RejectsBadInput) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_background(pm, 1.0);
  const auto db = b.finish();
  std::vector<const trace::Ticket*> bogus = {&db.tickets()[0]};
  EXPECT_THROW(analyze_transitions(db, bogus, kTruth, kMinutesPerWeek),
               Error);
  EXPECT_THROW(analyze_transitions(db, {}, kTruth, 0), Error);
}

TEST(Transitions, SimulatedTraceMatchesGeneratorStructure) {
  const auto& db = fa::testing::small_simulated_db();
  const auto result = analyze_transitions(db, db.crash_tickets(), kTruth,
                                          kMinutesPerWeek);
  // The generator keeps software follow-ups in-class with probability 0.7
  // but hardware ones with only 0.1: the measured self-transition of
  // software must clearly exceed hardware's.
  const double sw_self =
      result.self_transition(trace::FailureClass::kSoftware);
  const double hw_self =
      result.self_transition(trace::FailureClass::kHardware);
  EXPECT_GT(sw_self, hw_self + 0.1);
  // Follow-up probabilities are in the recurrence ballpark for every class
  // with enough data.
  for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
    EXPECT_LE(result.followup_probability[c], 0.6);
  }
  // Probability rows are normalized where populated.
  for (std::size_t i = 0; i < trace::kFailureClassCount; ++i) {
    double row = 0.0;
    for (std::size_t j = 0; j < trace::kFailureClassCount; ++j) {
      row += result.probability[i][j];
    }
    if (row > 0.0) {
      EXPECT_NEAR(row, 1.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace fa::analysis
