#include "src/trace/types.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::trace {
namespace {

TEST(Types, MachineTypeRoundTrip) {
  EXPECT_EQ(to_string(MachineType::kPhysical), "PM");
  EXPECT_EQ(to_string(MachineType::kVirtual), "VM");
  EXPECT_EQ(machine_type_from_string("PM"), MachineType::kPhysical);
  EXPECT_EQ(machine_type_from_string("VM"), MachineType::kVirtual);
  EXPECT_THROW(machine_type_from_string("pm"), Error);
}

TEST(Types, FailureClassRoundTrip) {
  for (FailureClass c : kAllFailureClasses) {
    EXPECT_EQ(failure_class_from_string(std::string(to_string(c))), c);
  }
  EXPECT_THROW(failure_class_from_string("disk"), Error);
}

TEST(Types, ClassifiedClassesExcludeOther) {
  EXPECT_EQ(kClassifiedFailureClasses.size(), 5u);
  for (FailureClass c : kClassifiedFailureClasses) {
    EXPECT_NE(c, FailureClass::kOther);
  }
  EXPECT_EQ(kAllFailureClasses.size(),
            static_cast<std::size_t>(kFailureClassCount));
}

TEST(Types, SubsystemNames) {
  EXPECT_EQ(subsystem_name(0), "Sys I");
  EXPECT_EQ(subsystem_name(4), "Sys V");
  EXPECT_THROW(subsystem_name(5), Error);
}

TEST(Types, IdValidityAndComparison) {
  ServerId unset;
  EXPECT_FALSE(unset.valid());
  ServerId a{3}, b{3}, c{4};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(Types, DistinctIdTypesDoNotMix) {
  // Compile-time property: ServerId and TicketId are different types.
  static_assert(!std::is_same_v<ServerId, TicketId>);
  static_assert(!std::is_same_v<IncidentId, BoxId>);
}

TEST(Types, IdsHashIntoUnorderedContainers) {
  std::unordered_set<ServerId> set;
  set.insert(ServerId{1});
  set.insert(ServerId{2});
  set.insert(ServerId{1});
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ServerId{2}));
}

}  // namespace
}  // namespace fa::trace
