#include "src/analysis/classification.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

const trace::TraceDatabase& db() { return fa::testing::small_simulated_db(); }

TEST(Classification, ExtractionRecoversExactlyTheCrashTickets) {
  // The symptom lexicon must identify precisely the tickets the simulator
  // flagged as crashes — no false positives from background tickets.
  const auto extracted = extract_crash_tickets(db());
  std::size_t flagged = 0;
  for (const trace::Ticket& t : db().tickets()) flagged += t.is_crash;
  EXPECT_EQ(extracted.size(), flagged);
  for (const trace::Ticket* t : extracted) EXPECT_TRUE(t->is_crash);
}

TEST(Classification, ClusteredExtractionIsPrecisionFocused) {
  // Unsupervised crash identification over all ticket descriptions: what it
  // flags must really be crashes (high precision, high overall accuracy).
  // Recall may be partial — the paper pairs clustering with manual labeling
  // for exactly this reason — though fully converged k-means reaches 1.0 on
  // this synthetic corpus; only the precision/accuracy floors are load-bearing.
  Rng rng(11);
  const auto result = extract_crash_tickets_clustered(db(), rng);
  EXPECT_GT(result.accuracy, 0.95);
  EXPECT_GT(result.precision, 0.80);
  EXPECT_GT(result.recall, 0.15);
  EXPECT_LE(result.recall, 1.0);
  EXPECT_FALSE(result.crash_tickets.empty());
}

TEST(Classification, ClusteredExtractionDeterministicForSeed) {
  Rng r1(12), r2(12);
  const auto a = extract_crash_tickets_clustered(db(), r1);
  const auto b = extract_crash_tickets_clustered(db(), r2);
  EXPECT_EQ(a.crash_tickets.size(), b.crash_tickets.size());
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Classification, AccuracyNearPaperLevel) {
  const auto tickets = extract_crash_tickets(db());
  Rng rng(3);
  const auto result = classify_tickets(tickets, {}, rng);
  // Paper: 87%; we accept anything clearly better than chance and in the
  // same band.
  EXPECT_GT(result.accuracy, 0.75);
  EXPECT_LE(result.accuracy, 1.0);
}

TEST(Classification, PredictionsCoverEveryTicket) {
  const auto tickets = extract_crash_tickets(db());
  Rng rng(4);
  const auto result = classify_tickets(tickets, {}, rng);
  ASSERT_EQ(result.predicted.size(), tickets.size());
  const auto map = prediction_map(tickets, result);
  EXPECT_EQ(map.size(), tickets.size());
  for (const trace::Ticket* t : tickets) {
    EXPECT_TRUE(map.contains(t->id));
  }
}

TEST(Classification, ConfusionMatrixRowSumsMatchTruthCounts) {
  const auto tickets = extract_crash_tickets(db());
  Rng rng(5);
  const auto result = classify_tickets(tickets, {}, rng);
  std::array<int, trace::kFailureClassCount> truth_counts{};
  for (const trace::Ticket* t : tickets) {
    ++truth_counts[static_cast<std::size_t>(t->true_class)];
  }
  for (std::size_t truth = 0; truth < trace::kFailureClassCount; ++truth) {
    int row = 0;
    for (std::size_t pred = 0; pred < trace::kFailureClassCount; ++pred) {
      row += result.confusion[truth][pred];
    }
    EXPECT_EQ(row, truth_counts[truth]);
  }
}

TEST(Classification, MoreClustersImproveSmallClassRecovery) {
  const auto tickets = extract_crash_tickets(db());
  ClassifierOptions coarse, fine;
  coarse.clusters = 6;
  fine.clusters = 12;
  Rng r1(6), r2(6);
  const double acc6 = classify_tickets(tickets, coarse, r1).accuracy;
  const double acc12 = classify_tickets(tickets, fine, r2).accuracy;
  EXPECT_GE(acc12, acc6 - 0.02);  // over-clustering must not hurt much
}

TEST(Classification, RejectsBadOptions) {
  const auto tickets = extract_crash_tickets(db());
  Rng rng(7);
  ClassifierOptions bad;
  bad.clusters = 0;
  EXPECT_THROW(classify_tickets(tickets, bad, rng), Error);
  bad = {};
  bad.labeled_fraction = 0.0;
  EXPECT_THROW(classify_tickets(tickets, bad, rng), Error);
  EXPECT_THROW(classify_tickets({}, {}, rng), Error);
}

TEST(Classification, DeterministicForSeed) {
  const auto tickets = extract_crash_tickets(db());
  Rng r1(8), r2(8);
  const auto a = classify_tickets(tickets, {}, r1);
  const auto b = classify_tickets(tickets, {}, r2);
  EXPECT_EQ(a.predicted, b.predicted);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

}  // namespace
}  // namespace fa::analysis
