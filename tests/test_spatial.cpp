#include "src/analysis/spatial.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace fa::analysis {
namespace {

const ClassLookup kTruth = [](const trace::Ticket& t) {
  return t.true_class;
};

TEST(Spatial, BreakdownFractionsExact) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  const auto vm1 = b.add_vm(0);
  const auto vm2 = b.add_vm(0);

  // Incident A: two PMs (power).
  const auto ia = b.new_incident();
  b.add_crash(pm1, 1.0, 1.0, trace::FailureClass::kPower, ia);
  b.add_crash(pm2, 1.0, 1.0, trace::FailureClass::kPower, ia);
  // Incident B: one PM.
  b.add_crash(pm1, 10.0, 1.0, trace::FailureClass::kHardware);
  // Incident C: two VMs (reboot).
  const auto ic = b.new_incident();
  b.add_crash(vm1, 20.0, 1.0, trace::FailureClass::kReboot, ic);
  b.add_crash(vm2, 20.0, 1.0, trace::FailureClass::kReboot, ic);
  // Incident D: one VM.
  b.add_crash(vm1, 30.0, 1.0, trace::FailureClass::kSoftware);
  const auto db = b.finish();

  const auto result = analyze_spatial(db, kTruth);
  EXPECT_EQ(result.incident_count, 4u);
  EXPECT_DOUBLE_EQ(result.all.zero, 0.0);
  EXPECT_DOUBLE_EQ(result.all.one, 0.5);
  EXPECT_DOUBLE_EQ(result.all.two_or_more, 0.5);

  // PM view: incidents C and D have zero PMs; B has one; A has two.
  EXPECT_DOUBLE_EQ(result.pm_only.zero, 0.5);
  EXPECT_DOUBLE_EQ(result.pm_only.one, 0.25);
  EXPECT_DOUBLE_EQ(result.pm_only.two_or_more, 0.25);
  EXPECT_DOUBLE_EQ(result.vm_only.zero, 0.5);

  EXPECT_DOUBLE_EQ(result.pm_only.dependency_fraction(), 0.5);
}

TEST(Spatial, AftershocksDoNotInflateIncidentSize) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  const auto incident = b.new_incident();
  // Three failures of the same server within one incident.
  b.add_crash(pm, 1.0, 1.0, trace::FailureClass::kSoftware, incident);
  b.add_crash(pm, 1.5, 1.0, trace::FailureClass::kSoftware, incident);
  b.add_crash(pm, 3.0, 1.0, trace::FailureClass::kSoftware, incident);
  const auto db = b.finish();
  const auto result = analyze_spatial(db, kTruth);
  EXPECT_EQ(result.incident_count, 1u);
  EXPECT_DOUBLE_EQ(result.all.one, 1.0);  // one distinct server
  const auto& sw = result.by_class[static_cast<std::size_t>(
      trace::FailureClass::kSoftware)];
  EXPECT_DOUBLE_EQ(sw.mean, 1.0);
  EXPECT_EQ(sw.max, 1);
}

TEST(Spatial, ClassStatsTrackMeanAndMax) {
  fa::testing::TinyDbBuilder b;
  std::vector<trace::ServerId> pms;
  for (int i = 0; i < 5; ++i) pms.push_back(b.add_pm(0));
  // Power incident with 4 servers and one with 2.
  const auto i1 = b.new_incident();
  for (int i = 0; i < 4; ++i) {
    b.add_crash(pms[static_cast<std::size_t>(i)], 1.0, 1.0,
                trace::FailureClass::kPower, i1);
  }
  const auto i2 = b.new_incident();
  b.add_crash(pms[0], 50.0, 1.0, trace::FailureClass::kPower, i2);
  b.add_crash(pms[1], 50.0, 1.0, trace::FailureClass::kPower, i2);
  const auto db = b.finish();
  const auto result = analyze_spatial(db, kTruth);
  const auto& power = result.by_class[static_cast<std::size_t>(
      trace::FailureClass::kPower)];
  EXPECT_EQ(power.incidents, 2u);
  EXPECT_DOUBLE_EQ(power.mean, 3.0);
  EXPECT_EQ(power.max, 4);
  EXPECT_EQ(result.max_servers_in_incident, 4);
}

TEST(Spatial, MajorityVoteDecidesIncidentClass) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  const auto pm3 = b.add_pm(0);
  const auto incident = b.new_incident();
  b.add_crash(pm1, 1.0, 1.0, trace::FailureClass::kNetwork, incident);
  b.add_crash(pm2, 1.0, 1.0, trace::FailureClass::kPower, incident);
  b.add_crash(pm3, 1.0, 1.0, trace::FailureClass::kPower, incident);
  const auto db = b.finish();
  const auto result = analyze_spatial(db, kTruth);
  const auto& power = result.by_class[static_cast<std::size_t>(
      trace::FailureClass::kPower)];
  EXPECT_EQ(power.incidents, 1u);
  EXPECT_DOUBLE_EQ(power.mean, 3.0);
}

TEST(Spatial, SimulatedTraceShowsVmDependencyExceedingPm) {
  // Paper Section IV-E: VMs show stronger spatial dependency than PMs.
  const auto& db = fa::testing::small_simulated_db();
  const auto result = analyze_spatial(db, kTruth);
  EXPECT_GT(result.vm_only.dependency_fraction(),
            result.pm_only.dependency_fraction());
  EXPECT_GT(result.all.one, result.all.two_or_more);  // singletons dominate
}

}  // namespace
}  // namespace fa::analysis
