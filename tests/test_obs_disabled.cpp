// Compile-out mode: with FA_OBS_DISABLED defined before the headers, the
// whole obs API must still compile (same spellings as the instrumented
// code) while recording nothing. Defining the macro in this TU only — and
// linking against the normally-built libraries — also exercises the
// inline-namespace separation: stub and full implementation coexist in one
// binary without ODR trouble.
#define FA_OBS_DISABLED 1

#include <gtest/gtest.h>

#include "src/obs/export.h"
#include "src/obs/metrics.h"
#include "src/obs/span.h"

namespace {

using namespace fa;

TEST(ObsDisabled, CompileTimeFlagIsVisible) {
  EXPECT_FALSE(obs::kCompiledIn);
  EXPECT_FALSE(obs::enabled());
}

TEST(ObsDisabled, EveryOpIsANoOp) {
  obs::Counter& counter =
      obs::counter("disabled.counter", {{"k", "v"}});
  counter.add(42);
  EXPECT_EQ(counter.value(), 0u);

  obs::Gauge& gauge = obs::gauge("disabled.gauge");
  gauge.set(3.0);
  EXPECT_EQ(gauge.value(), 0.0);

  obs::Histogram& histogram =
      obs::histogram("disabled.hist", {1.0, 2.0});
  histogram.record(1.5);
  EXPECT_EQ(histogram.count(), 0u);

  {
    obs::Span span("disabled.span");
    span.close();
  }

  obs::set_enabled(true);  // accepted, still off
  EXPECT_FALSE(obs::enabled());
}

TEST(ObsDisabled, SnapshotsAndExportersAreEmptyButWellFormed) {
  auto& registry = obs::MetricsRegistry::global();
  registry.reset();
  const auto snapshot = registry.snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.histograms.empty());
  EXPECT_TRUE(snapshot.spans.empty());
  EXPECT_TRUE(registry.span_events().empty());

  // Exporters are plain functions over snapshot data, so they still
  // produce valid (empty) documents.
  EXPECT_NE(obs::to_json(snapshot).find("\"deterministic\""),
            std::string::npos);
  EXPECT_NE(obs::chrome_trace_json(registry.span_events())
                .find("\"traceEvents\""),
            std::string::npos);
  EXPECT_EQ(obs::render_table(snapshot), "(no metrics recorded)\n");
}

// Shared plain-data helpers stay available regardless of the macro.
TEST(ObsDisabled, PlainDataHelpersStillWork) {
  EXPECT_EQ(obs::canonical_labels({{"b", "2"}, {"a", "1"}}), "a=1,b=2");
  EXPECT_FALSE(obs::duration_seconds_bounds().empty());
  EXPECT_FALSE(obs::size_bounds().empty());
}

}  // namespace
