#include "src/util/sim_time.h"

#include <gtest/gtest.h>

namespace fa {
namespace {

TEST(SimTime, WindowLengthsMatchPaper) {
  EXPECT_EQ(monitoring_window().day_count(), 731);  // two years, one leap
  EXPECT_EQ(ticket_window().day_count(), 365);
  EXPECT_EQ(onoff_window().day_count(), 61);  // March + April 2013
}

TEST(SimTime, TicketWindowNestedInMonitoring) {
  const auto m = monitoring_window();
  const auto t = ticket_window();
  EXPECT_GE(t.begin, m.begin);
  EXPECT_LE(t.end, m.end);
}

TEST(SimTime, BucketIndexing) {
  const auto w = ticket_window();
  EXPECT_EQ(w.day_index(w.begin), 0);
  EXPECT_EQ(w.day_index(w.begin + kMinutesPerDay - 1), 0);
  EXPECT_EQ(w.day_index(w.begin + kMinutesPerDay), 1);
  EXPECT_EQ(w.week_index(w.begin + 6 * kMinutesPerDay), 0);
  EXPECT_EQ(w.week_index(w.begin + 7 * kMinutesPerDay), 1);
  EXPECT_EQ(w.month_index(w.begin + 29 * kMinutesPerDay), 0);
  EXPECT_EQ(w.month_index(w.begin + 30 * kMinutesPerDay), 1);
}

TEST(SimTime, OutOfWindowIndexIsNegative) {
  const auto w = ticket_window();
  EXPECT_EQ(w.day_index(w.begin - 1), -1);
  EXPECT_EQ(w.day_index(w.end), -1);
  EXPECT_EQ(w.week_index(w.end + kMinutesPerWeek), -1);
}

TEST(SimTime, WeekCountCoversYear) {
  const auto w = ticket_window();
  EXPECT_EQ(w.week_count(), 53);  // 365 days = 52 full weeks + 1 day
  EXPECT_EQ(w.month_count(), 13);  // 365 days = 12 full 30d months + 5 days
}

TEST(SimTime, ConversionRoundTrips) {
  EXPECT_DOUBLE_EQ(to_hours(from_hours(5.5)), 5.5);
  EXPECT_DOUBLE_EQ(to_days(from_days(3.25)), 3.25);
  EXPECT_EQ(from_days(1.0), kMinutesPerDay);
  EXPECT_EQ(from_hours(24.0), kMinutesPerDay);
}

TEST(SimTime, FormatKnownDates) {
  EXPECT_EQ(format_time(0), "2011-07-01 00:00");
  EXPECT_EQ(format_date(ticket_window().begin), "2012-07-01");
  EXPECT_EQ(format_date(onoff_window().begin), "2013-03-01");
  EXPECT_EQ(format_time(90), "2011-07-01 01:30");
}

TEST(SimTime, ContainsIsHalfOpen) {
  const auto w = ticket_window();
  EXPECT_TRUE(w.contains(w.begin));
  EXPECT_FALSE(w.contains(w.end));
  EXPECT_TRUE(w.contains(w.end - 1));
  EXPECT_FALSE(w.contains(w.begin - 1));
}

}  // namespace
}  // namespace fa
