#include "src/sim/fleet.h"

#include <unordered_set>

#include <gtest/gtest.h>

namespace fa::sim {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  static const Fleet& fleet() {
    static const Fleet f = [] {
      Rng rng(5);
      return build_fleet(SimulationConfig::paper_defaults().scaled(0.3), rng);
    }();
    return f;
  }
  static const SimulationConfig& config() {
    static const SimulationConfig c =
        SimulationConfig::paper_defaults().scaled(0.3);
    return c;
  }
};

TEST_F(FleetTest, PopulationCountsMatchConfig) {
  std::array<int, trace::kSubsystemCount> pms{}, vms{};
  for (const trace::ServerRecord& s : fleet().servers) {
    (s.type == trace::MachineType::kPhysical ? pms : vms)[s.subsystem]++;
  }
  for (int sys = 0; sys < trace::kSubsystemCount; ++sys) {
    EXPECT_EQ(pms[sys], config().systems[sys].pm_count) << "sys " << sys;
    EXPECT_EQ(vms[sys], config().systems[sys].vm_count) << "sys " << sys;
  }
}

TEST_F(FleetTest, IdsAreContiguousIndices) {
  for (std::size_t i = 0; i < fleet().servers.size(); ++i) {
    EXPECT_EQ(fleet().servers[i].id.value, static_cast<std::int32_t>(i));
  }
  EXPECT_EQ(fleet().servers.size(), fleet().profiles.size());
}

TEST_F(FleetTest, PmsHaveNoDiskDataOrBox) {
  for (const trace::ServerRecord& s : fleet().servers) {
    if (s.type != trace::MachineType::kPhysical) continue;
    EXPECT_FALSE(s.disk_gb.has_value());
    EXPECT_FALSE(s.disk_count.has_value());
    EXPECT_FALSE(s.host_box.valid());
  }
}

TEST_F(FleetTest, VmsHaveFullConfigurationAndBox) {
  for (const trace::ServerRecord& s : fleet().servers) {
    if (s.type != trace::MachineType::kVirtual) continue;
    EXPECT_TRUE(s.disk_gb.has_value());
    EXPECT_TRUE(s.disk_count.has_value());
    EXPECT_TRUE(s.host_box.valid());
    EXPECT_GE(*s.disk_count, 1);
  }
}

TEST_F(FleetTest, BoxMembershipConsistent) {
  for (std::size_t box = 0; box < fleet().box_members.size(); ++box) {
    for (trace::ServerId id : fleet().box_members[box]) {
      EXPECT_EQ(fleet().server(id).host_box.value,
                static_cast<std::int32_t>(box));
    }
  }
}

TEST_F(FleetTest, ConsolidationEqualsBoxCapacityBound) {
  for (const trace::ServerRecord& s : fleet().servers) {
    if (s.type != trace::MachineType::kVirtual) continue;
    const auto& members =
        fleet().box_members[static_cast<std::size_t>(s.host_box.value)];
    const MachineProfile& p = fleet().profile(s.id);
    EXPECT_GE(p.consolidation, static_cast<int>(members.size()));
    EXPECT_GE(p.consolidation, 1);
    EXPECT_LE(p.consolidation, 32);
  }
}

TEST_F(FleetTest, PrecreatedFractionNearConfig) {
  std::size_t vms = 0, precreated = 0;
  const TimePoint db_start = monitoring_window().begin;
  for (std::size_t i = 0; i < fleet().servers.size(); ++i) {
    if (fleet().servers[i].type != trace::MachineType::kVirtual) continue;
    ++vms;
    precreated += fleet().profiles[i].creation < db_start;
  }
  const double fraction = static_cast<double>(precreated) / vms;
  EXPECT_NEAR(fraction, config().vm_precreated_fraction, 0.04);
}

TEST_F(FleetTest, FirstRecordClampedToMonitoringStart) {
  const TimePoint db_start = monitoring_window().begin;
  for (std::size_t i = 0; i < fleet().servers.size(); ++i) {
    const auto& s = fleet().servers[i];
    const auto& p = fleet().profiles[i];
    EXPECT_GE(s.first_record, db_start);
    EXPECT_GE(s.first_record, p.creation);
    if (p.creation >= db_start) {
      EXPECT_EQ(s.first_record, p.creation);
    }
  }
}

TEST_F(FleetTest, PowerDomainsPartitionTheFleet) {
  std::unordered_set<std::int32_t> seen;
  std::size_t total = 0;
  for (const auto& domain : fleet().power_domain_members) {
    for (trace::ServerId id : domain) {
      EXPECT_TRUE(seen.insert(id.value).second) << "duplicate in domains";
      ++total;
    }
  }
  EXPECT_EQ(total, fleet().servers.size());
}

TEST_F(FleetTest, PowerDomainsAreSubsystemLocal) {
  for (const auto& domain : fleet().power_domain_members) {
    if (domain.empty()) continue;
    const auto sys = fleet().server(domain.front()).subsystem;
    for (trace::ServerId id : domain) {
      EXPECT_EQ(fleet().server(id).subsystem, sys);
    }
  }
}

TEST_F(FleetTest, AppGroupsConsistentAndBounded) {
  for (std::size_t g = 0; g < fleet().app_group_members.size(); ++g) {
    const auto& group = fleet().app_group_members[g];
    EXPECT_GE(group.size(), 2u);
    EXPECT_LE(group.size(), 8u);
    for (trace::ServerId id : group) {
      EXPECT_EQ(fleet().profile(id).app_group, static_cast<int>(g));
    }
  }
}

TEST_F(FleetTest, UsageProfilesWithinPhysicalBounds) {
  for (std::size_t i = 0; i < fleet().profiles.size(); ++i) {
    const MachineProfile& p = fleet().profiles[i];
    EXPECT_GT(p.mean_cpu_util, 0.0);
    EXPECT_LT(p.mean_cpu_util, 100.0);
    EXPECT_GT(p.mean_mem_util, 0.0);
    EXPECT_LT(p.mean_mem_util, 100.0);
    if (fleet().servers[i].type == trace::MachineType::kVirtual) {
      ASSERT_TRUE(p.mean_disk_util.has_value());
      ASSERT_TRUE(p.mean_net_kbps.has_value());
      EXPECT_GT(*p.mean_net_kbps, 0.0);
    } else {
      EXPECT_FALSE(p.mean_disk_util.has_value());
      EXPECT_FALSE(p.mean_net_kbps.has_value());
    }
  }
}

TEST_F(FleetTest, DeterministicForSeed) {
  Rng rng1(5), rng2(5);
  const auto cfg = SimulationConfig::paper_defaults().scaled(0.05);
  const Fleet a = build_fleet(cfg, rng1);
  const Fleet b = build_fleet(cfg, rng2);
  ASSERT_EQ(a.servers.size(), b.servers.size());
  for (std::size_t i = 0; i < a.servers.size(); ++i) {
    EXPECT_EQ(a.servers[i].cpu_count, b.servers[i].cpu_count);
    EXPECT_EQ(a.servers[i].memory_gb, b.servers[i].memory_gb);
    EXPECT_EQ(a.profiles[i].creation, b.profiles[i].creation);
  }
}

TEST_F(FleetTest, ConsolidationPopulationSkewsHigh) {
  // Fig. 9: far more VMs sit at high consolidation levels than alone.
  std::size_t low = 0, high = 0;
  for (std::size_t i = 0; i < fleet().servers.size(); ++i) {
    if (fleet().servers[i].type != trace::MachineType::kVirtual) continue;
    const int level = fleet().profiles[i].consolidation;
    if (level <= 2) ++low;
    if (level >= 16) ++high;
  }
  EXPECT_GT(high, 5 * low);
}

}  // namespace
}  // namespace fa::sim
