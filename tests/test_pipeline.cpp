#include "src/analysis/pipeline.h"

#include <gtest/gtest.h>

#include "src/analysis/spatial.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

const trace::TraceDatabase& db() { return fa::testing::small_simulated_db(); }

TEST(Pipeline, ExtractsAndClassifiesEverything) {
  const AnalysisPipeline pipeline(db());
  EXPECT_FALSE(pipeline.failures().empty());
  EXPECT_GT(pipeline.classification().accuracy, 0.75);
  for (const trace::Ticket* t : pipeline.failures()) {
    // class_of never throws for extracted tickets.
    (void)pipeline.class_of(*t);
  }
}

TEST(Pipeline, ClassLookupUsableByDownstreamAnalyses) {
  const AnalysisPipeline pipeline(db());
  const auto spatial = analyze_spatial(db(), pipeline.class_lookup());
  EXPECT_GT(spatial.incident_count, 0u);
}

TEST(Pipeline, UnclassifiedTicketThrows) {
  const AnalysisPipeline pipeline(db());
  trace::Ticket foreign;
  foreign.id = trace::TicketId{-1};
  EXPECT_THROW(pipeline.class_of(foreign), Error);
}

TEST(Pipeline, DeterministicForSeed) {
  const AnalysisPipeline a(db(), 42);
  const AnalysisPipeline b(db(), 42);
  EXPECT_DOUBLE_EQ(a.classification().accuracy, b.classification().accuracy);
  EXPECT_EQ(a.classification().predicted, b.classification().predicted);
}

TEST(Pipeline, PredictedClassDistributionRoughlyMatchesTruth) {
  const AnalysisPipeline pipeline(db());
  std::array<int, trace::kFailureClassCount> truth{}, predicted{};
  for (const trace::Ticket* t : pipeline.failures()) {
    ++truth[static_cast<std::size_t>(t->true_class)];
    ++predicted[static_cast<std::size_t>(pipeline.class_of(*t))];
  }
  const auto n = static_cast<double>(pipeline.failures().size());
  for (std::size_t c = 0; c < trace::kFailureClassCount; ++c) {
    EXPECT_NEAR(predicted[c] / n, truth[c] / n, 0.10) << "class " << c;
  }
}

}  // namespace
}  // namespace fa::analysis
