#include "src/sim/hazard.h"

#include <numeric>

#include <gtest/gtest.h>

namespace fa::sim {
namespace {

class HazardTest : public ::testing::Test {
 protected:
  static const SimulationConfig& config() {
    static const SimulationConfig c =
        SimulationConfig::paper_defaults().scaled(0.3);
    return c;
  }
  static const Fleet& fleet() {
    static const Fleet f = [] {
      Rng rng(5);
      return build_fleet(config(), rng);
    }();
    return f;
  }
  static const HazardModel& model() {
    static const HazardModel m(config(), fleet());
    return m;
  }
};

TEST_F(HazardTest, ClassDistributionNormalized) {
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    for (int t = 0; t < trace::kMachineTypeCount; ++t) {
      const auto dist = class_distribution(
          config(), sys, static_cast<trace::MachineType>(t));
      const double total =
          std::accumulate(dist.begin(), dist.end(), 0.0);
      EXPECT_NEAR(total, 1.0, 1e-12);
      for (double d : dist) EXPECT_GE(d, 0.0);
    }
  }
}

TEST_F(HazardTest, VmBoostShiftsMixTowardReboots) {
  const auto pm = class_distribution(config(), 0, trace::MachineType::kPhysical);
  const auto vm = class_distribution(config(), 0, trace::MachineType::kVirtual);
  const auto reboot = static_cast<std::size_t>(trace::FailureClass::kReboot);
  const auto hw = static_cast<std::size_t>(trace::FailureClass::kHardware);
  EXPECT_GT(vm[reboot], pm[reboot]);
  EXPECT_LT(vm[hw], pm[hw]);
}

TEST_F(HazardTest, MachineWeightsArePositiveForExistingMachines) {
  for (std::size_t i = 0; i < fleet().servers.size(); ++i) {
    const double w =
        machine_weight(config(), fleet().servers[i], fleet().profiles[i]);
    const double exposure =
        exposure_fraction(fleet().servers[i], fleet().profiles[i]);
    if (exposure > 0.0) {
      EXPECT_GT(w, 0.0);
    } else {
      EXPECT_EQ(w, 0.0);
    }
  }
}

TEST_F(HazardTest, ExposureFractionSemantics) {
  trace::ServerRecord pm;
  pm.type = trace::MachineType::kPhysical;
  MachineProfile p;
  EXPECT_DOUBLE_EQ(exposure_fraction(pm, p), 1.0);

  trace::ServerRecord vm;
  vm.type = trace::MachineType::kVirtual;
  MachineProfile young;
  const auto year = ticket_window();
  young.creation = year.begin + year.length() / 2;
  EXPECT_NEAR(exposure_fraction(vm, young), 0.5, 1e-9);

  MachineProfile unborn;
  unborn.creation = year.end + 100;
  EXPECT_DOUBLE_EQ(exposure_fraction(vm, unborn), 0.0);
}

TEST_F(HazardTest, PrimaryCountsTrackTargets) {
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    const auto& pop = config().systems[sys];
    const int pm_primaries =
        model().primary_incident_count(sys, trace::MachineType::kPhysical);
    const int vm_primaries =
        model().primary_incident_count(sys, trace::MachineType::kVirtual);
    if (pop.pm_crash_tickets > 0) {
      EXPECT_GT(pm_primaries, 0) << "sys " << static_cast<int>(sys);
      // Inflation >= 1, so primaries never exceed the boosted target.
      EXPECT_LE(pm_primaries,
                static_cast<int>(pop.pm_crash_tickets *
                                 config().pm_calibration_boost[sys]) + 1);
    }
    if (pop.vm_crash_tickets == 0) {
      EXPECT_EQ(vm_primaries, 0) << "sys " << static_cast<int>(sys);
    }
  }
}

TEST_F(HazardTest, TicketInflationAboveOne) {
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    for (int t = 0; t < trace::kMachineTypeCount; ++t) {
      const double inflation = model().ticket_inflation(
          sys, static_cast<trace::MachineType>(t));
      EXPECT_GT(inflation, 1.0);
      EXPECT_LT(inflation, 4.0);
    }
  }
}

TEST_F(HazardTest, SampleRootRespectsStratum) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const auto id = model().sample_root(2, trace::MachineType::kVirtual, rng);
    ASSERT_TRUE(id.valid());
    EXPECT_EQ(fleet().server(id).subsystem, 2);
    EXPECT_EQ(fleet().server(id).type, trace::MachineType::kVirtual);
  }
}

TEST_F(HazardTest, SampleRootPrefersHighWeightMachines) {
  // Empirically: VMs with 6 disks must be over-represented relative to
  // their population share (their disk-count multiplier is 10x the 1-disk
  // one).
  Rng rng(11);
  std::size_t six_disk_draws = 0, draws = 4000;
  for (std::size_t i = 0; i < draws; ++i) {
    const auto id = model().sample_root(0, trace::MachineType::kVirtual, rng);
    if (fleet().server(id).disk_count.value_or(0) >= 5) ++six_disk_draws;
  }
  std::size_t six_disk_pop = 0, pop = 0;
  for (const auto& s : fleet().servers) {
    if (s.type != trace::MachineType::kVirtual || s.subsystem != 0) continue;
    ++pop;
    if (s.disk_count.value_or(0) >= 5) ++six_disk_pop;
  }
  const double draw_share = static_cast<double>(six_disk_draws) / draws;
  const double pop_share = static_cast<double>(six_disk_pop) / pop;
  EXPECT_GT(draw_share, 1.3 * pop_share);
}

}  // namespace
}  // namespace fa::sim
