#include "src/sim/validation.h"

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "tests/test_support.h"

namespace fa::sim {
namespace {

TEST(Validation, CleanSimulationPasses) {
  const auto config = SimulationConfig::paper_defaults().scaled(0.15);
  const auto report =
      validate_trace(fa::testing::small_simulated_db(), config);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NE(report.to_string().find("OK"), std::string::npos);
}

TEST(Validation, DetectsPopulationMismatch) {
  const auto config = SimulationConfig::paper_defaults().scaled(0.15);
  auto wrong = config;
  wrong.systems[0].pm_count += 5;
  const auto report =
      validate_trace(fa::testing::small_simulated_db(), wrong);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    found |= issue.check.find("population") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validation, DetectsCrashVolumeDrift) {
  const auto config = SimulationConfig::paper_defaults().scaled(0.15);
  auto wrong = config;
  wrong.systems[2].pm_crash_tickets *= 3;  // pretend a much higher target
  const auto report =
      validate_trace(fa::testing::small_simulated_db(), wrong);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    found |= issue.check.find("crash.Sys III.pm") != std::string::npos;
  }
  EXPECT_TRUE(found) << report.to_string();
}

TEST(Validation, DetectsSchemaViolations) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  // A PM carrying power events is a schema violation.
  b.raw().add_power_event({pm, onoff_window().begin + 10, false});
  b.raw().add_power_event({pm, onoff_window().begin + 100, true});
  const auto db = b.finish();
  auto config = SimulationConfig::paper_defaults().scaled(0.01);
  const auto report = validate_trace(db, config);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& issue : report.issues) {
    found |= issue.check.find("power.server") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(Validation, ReportRendersIssues) {
  ValidationReport report;
  report.issues.push_back({"check.x", "something broke"});
  const auto text = report.to_string();
  EXPECT_NE(text.find("1 issue"), std::string::npos);
  EXPECT_NE(text.find("check.x"), std::string::npos);
  EXPECT_NE(text.find("something broke"), std::string::npos);
}

}  // namespace
}  // namespace fa::sim
