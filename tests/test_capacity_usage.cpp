#include "src/analysis/capacity_usage.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace fa::analysis {
namespace {

const CapacityAttribute kCpuCount = [](const trace::ServerRecord& s) {
  return std::optional<double>(s.cpu_count);
};

TEST(CapacityBinned, ExactRatesAndPopulation) {
  fa::testing::TinyDbBuilder b;
  const auto small1 = b.add_pm(0, 2);
  const auto small2 = b.add_pm(0, 2);
  const auto big = b.add_pm(0, 16);
  b.add_crash(small1, 1.0, 1.0);
  b.add_crash(big, 2.0, 1.0);
  b.add_crash(big, 3.0, 1.0);
  (void)small2;
  const auto db = b.finish();
  const auto failures = db.crash_tickets();

  const auto result = capacity_binned_rates(
      db, failures, {}, kCpuCount,
      stats::BinSpec::from_edges({1.0, 8.0, 32.0}));

  ASSERT_EQ(result.population.size(), 2u);
  EXPECT_EQ(result.population[0], 2u);  // two 2-cpu machines
  EXPECT_EQ(result.population[1], 1u);  // one 16-cpu machine
  EXPECT_EQ(result.failure_count[0], 1u);
  EXPECT_EQ(result.failure_count[1], 2u);

  const int weeks = db.window().week_count();
  EXPECT_NEAR(result.overall_rate[0], 1.0 / (2.0 * weeks), 1e-12);
  EXPECT_NEAR(result.overall_rate[1], 2.0 / (1.0 * weeks), 1e-12);
}

TEST(CapacityBinned, MissingAttributeExcluded) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);   // no disk data
  const auto vm = b.add_vm(0);   // disk_gb = 128
  b.add_crash(pm, 1.0, 1.0);
  b.add_crash(vm, 2.0, 1.0);
  const auto db = b.finish();

  const CapacityAttribute disk = [](const trace::ServerRecord& s) {
    return s.disk_gb;
  };
  const auto result = capacity_binned_rates(
      db, db.crash_tickets(), {}, disk,
      stats::BinSpec::from_edges({0.0, 1000.0}));
  EXPECT_EQ(result.population[0], 1u);     // only the VM counts
  EXPECT_EQ(result.failure_count[0], 1u);  // the PM failure is excluded
}

TEST(CapacityBinned, MaxMinFactor) {
  BinnedRates r{stats::BinSpec::from_edges({0.0, 1.0, 2.0, 3.0}),
                {1, 1, 1},
                {0, 0, 0},
                {0.001, 0.0, 0.01},
                {}};
  EXPECT_DOUBLE_EQ(r.max_min_rate_factor(), 10.0);  // zero bins ignored
  BinnedRates empty{stats::BinSpec::from_edges({0.0, 1.0}),
                    {0}, {0}, {0.0}, {}};
  EXPECT_DOUBLE_EQ(empty.max_min_rate_factor(), 0.0);
}

TEST(UsageBinned, ServerWeeksBinnedByWeeklyValue) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  // Week 0 at 5% CPU, week 1 at 50%.
  b.raw().add_weekly_usage({pm, 0, 5.0, 20.0, {}, {}});
  b.raw().add_weekly_usage({pm, 1, 50.0, 20.0, {}, {}});
  // One failure in each week.
  b.add_crash(pm, 1.0, 1.0);
  b.add_crash(pm, 8.0, 1.0);
  const auto db = b.finish();

  const UsageAttribute cpu = [](const trace::WeeklyUsage& u) {
    return std::optional<double>(u.cpu_util);
  };
  const auto result = usage_binned_rates(
      db, db.crash_tickets(), {}, cpu,
      stats::BinSpec::from_edges({0.0, 10.0, 100.0}));

  ASSERT_EQ(result.population.size(), 2u);
  EXPECT_EQ(result.population[0], 1u);  // one low-CPU server-week
  EXPECT_EQ(result.population[1], 1u);
  EXPECT_EQ(result.failure_count[0], 1u);
  EXPECT_EQ(result.failure_count[1], 1u);
  EXPECT_DOUBLE_EQ(result.overall_rate[0], 1.0);  // 1 failure / 1 server-week
  EXPECT_DOUBLE_EQ(result.overall_rate[1], 1.0);
}

TEST(UsageBinned, FailureInWeekWithoutUsageRowIgnored) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.raw().add_weekly_usage({pm, 0, 5.0, 20.0, {}, {}});
  b.add_crash(pm, 10.0, 1.0);  // week 1: no usage row
  const auto db = b.finish();
  const UsageAttribute cpu = [](const trace::WeeklyUsage& u) {
    return std::optional<double>(u.cpu_util);
  };
  const auto result = usage_binned_rates(
      db, db.crash_tickets(), {}, cpu,
      stats::BinSpec::from_edges({0.0, 100.0}));
  EXPECT_EQ(result.failure_count[0], 0u);
  EXPECT_EQ(result.population[0], 1u);
}

TEST(UsageBinned, MissingOptionalUsageExcluded) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);  // PMs have no disk_util
  b.raw().add_weekly_usage({pm, 0, 5.0, 20.0, {}, {}});
  const auto db = b.finish();
  const UsageAttribute disk = [](const trace::WeeklyUsage& u) {
    return u.disk_util;
  };
  const auto result = usage_binned_rates(
      db, db.crash_tickets(), {}, disk,
      stats::BinSpec::from_edges({0.0, 100.0}));
  EXPECT_EQ(result.population[0], 0u);
}

TEST(CapacityBinned, SimulatedTraceShowsDiskCountTrend) {
  // Fig. 7d: VM failure rate increases with the number of virtual disks.
  const auto& db = fa::testing::small_simulated_db();
  const CapacityAttribute disks = [](const trace::ServerRecord& s) {
    return s.disk_count ? std::optional<double>(*s.disk_count)
                        : std::nullopt;
  };
  const auto result = capacity_binned_rates(
      db, db.crash_tickets(), {trace::MachineType::kVirtual, std::nullopt},
      disks, stats::BinSpec::from_edges({1.0, 2.0, 3.0, 7.0}));
  // Rate for 1 disk < rate for 2 disks < rate for 3+ disks.
  EXPECT_LT(result.overall_rate[0], result.overall_rate[1]);
  EXPECT_LT(result.overall_rate[1], result.overall_rate[2]);
}

}  // namespace
}  // namespace fa::analysis
