#include "src/sim/config.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "src/paper/reference.h"
#include "src/util/error.h"

namespace fa::sim {
namespace {

TEST(Config, PaperDefaultsMatchTable2Populations) {
  const auto c = SimulationConfig::paper_defaults();
  int pms = 0, vms = 0;
  for (int s = 0; s < trace::kSubsystemCount; ++s) {
    EXPECT_EQ(c.systems[s].pm_count, paperref::kTable2[s].pms);
    EXPECT_EQ(c.systems[s].vm_count, paperref::kTable2[s].vms);
    EXPECT_EQ(c.systems[s].all_tickets, paperref::kTable2[s].all_tickets);
    pms += c.systems[s].pm_count;
    vms += c.systems[s].vm_count;
  }
  EXPECT_EQ(pms, paperref::kTotalPms);
  EXPECT_EQ(vms, paperref::kTotalVms);
}

TEST(Config, ClassMixesAreNormalized) {
  const auto c = SimulationConfig::paper_defaults();
  for (const auto& sys : c.systems) {
    const double total = std::accumulate(sys.class_mix.begin(),
                                         sys.class_mix.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 0.02);
    EXPECT_GT(sys.other_fraction, 0.0);
    EXPECT_LT(sys.other_fraction, 1.0);
  }
}

TEST(Config, OtherFractionsMatchPaper) {
  const auto c = SimulationConfig::paper_defaults();
  for (int s = 0; s < trace::kSubsystemCount; ++s) {
    EXPECT_NEAR(c.systems[s].other_fraction, paperref::kOtherShare[s], 1e-9);
  }
}

TEST(Config, RepairSpecsMatchTable4) {
  const auto c = SimulationConfig::paper_defaults();
  for (std::size_t i = 0; i < paperref::kTable4.size(); ++i) {
    EXPECT_NEAR(c.repair[i].mean_hours, paperref::kTable4[i].mean, 1e-9);
    EXPECT_NEAR(c.repair[i].median_hours, paperref::kTable4[i].median, 1e-9);
    EXPECT_GT(c.repair[i].mean_hours, c.repair[i].median_hours);
  }
}

TEST(Config, IncidentSizesMatchTable7Means) {
  const auto c = SimulationConfig::paper_defaults();
  for (std::size_t i = 0; i < paperref::kTable7.size(); ++i) {
    // Power is deliberately dialed above its Table VII mean because the
    // realized sizes shrink (pool eligibility, monitoring losses); the
    // other classes sit on the analytic target.
    if (static_cast<trace::FailureClass>(i) == trace::FailureClass::kPower) {
      EXPECT_GE(c.incident_size[i].expected_size(), paperref::kTable7[i].mean);
      EXPECT_LE(c.incident_size[i].expected_size(),
                paperref::kTable7[i].mean + 0.8);
    } else {
      EXPECT_NEAR(c.incident_size[i].expected_size(),
                  paperref::kTable7[i].mean, 0.20)
          << "class " << i;
    }
    EXPECT_EQ(c.incident_size[i].max_extra + 1, paperref::kTable7[i].max);
  }
  EXPECT_NEAR(c.incident_size[5].expected_size(), paperref::kTable7Other.mean,
              0.12);
}

TEST(Config, ExpectedSizeMatchesHarmonicFormula) {
  IncidentSizeSpec spec{0.5, 1.0, 4};
  // H_4(1) = 1 + 1/2 + 1/3 + 1/4 = 25/12.
  EXPECT_NEAR(spec.expected_size(), 1.0 + 0.5 * 25.0 / 12.0, 1e-12);
}

TEST(Config, MultiplierCurveLookup) {
  MultiplierCurve curve{{0.0, 1.0, 2.0}, {10.0, 20.0}};
  EXPECT_DOUBLE_EQ(curve.at(-5.0), 10.0);  // below range: first value
  EXPECT_DOUBLE_EQ(curve.at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(curve.at(0.99), 10.0);
  EXPECT_DOUBLE_EQ(curve.at(1.0), 20.0);
  EXPECT_DOUBLE_EQ(curve.at(5.0), 20.0);  // above range: last value
}

TEST(Config, MultiplierCurveRejectsMismatch) {
  MultiplierCurve bad{{0.0, 1.0}, {1.0, 2.0}};
  EXPECT_THROW(bad.at(0.5), Error);
}

TEST(Config, AllCurvesWellFormedAndPositive) {
  const auto c = SimulationConfig::paper_defaults();
  for (const MultiplierCurve* curve :
       {&c.pm_cpu_curve, &c.vm_cpu_curve, &c.pm_mem_curve, &c.vm_mem_curve,
        &c.vm_disk_cap_curve, &c.vm_disk_count_curve, &c.pm_cpu_util_curve,
        &c.vm_cpu_util_curve, &c.pm_mem_util_curve, &c.vm_mem_util_curve,
        &c.vm_disk_util_curve, &c.vm_net_curve, &c.vm_consolidation_curve,
        &c.vm_onoff_curve, &c.vm_age_curve}) {
    ASSERT_EQ(curve->edges.size(), curve->multipliers.size() + 1);
    for (double m : curve->multipliers) EXPECT_GT(m, 0.0);
    for (std::size_t i = 1; i < curve->edges.size(); ++i) {
      EXPECT_GT(curve->edges[i], curve->edges[i - 1]);
    }
  }
}

TEST(Config, CurveShapesEncodePaperTrends) {
  const auto c = SimulationConfig::paper_defaults();
  // Fig. 7a: PM rate rises to 24 CPUs then drops at 32/64.
  EXPECT_GT(c.pm_cpu_curve.at(24), c.pm_cpu_curve.at(1));
  EXPECT_GT(c.pm_cpu_curve.at(24), c.pm_cpu_curve.at(32));
  // Fig. 7d: VM disk-count trend is monotone increasing.
  EXPECT_GT(c.vm_disk_count_curve.at(6), 5.0 * c.vm_disk_count_curve.at(1));
  // Fig. 8a: VM CPU-utilization trend increases over 0-30%.
  EXPECT_GT(c.vm_cpu_util_curve.at(25), c.vm_cpu_util_curve.at(5));
  // Fig. 9: consolidation decreases failure rates.
  EXPECT_LT(c.vm_consolidation_curve.at(32), c.vm_consolidation_curve.at(1));
}

TEST(Config, ScaledShrinksPopulations) {
  const auto c = SimulationConfig::paper_defaults();
  const auto half = c.scaled(0.5);
  for (int s = 0; s < trace::kSubsystemCount; ++s) {
    EXPECT_NEAR(half.systems[s].pm_count, c.systems[s].pm_count / 2.0, 1.0);
    EXPECT_NEAR(half.systems[s].vm_count, c.systems[s].vm_count / 2.0, 1.0);
  }
  // Zero targets stay zero (Sys II VMs have no crash tickets).
  EXPECT_EQ(half.systems[1].vm_crash_tickets, 0);
}

TEST(Config, ScaledRejectsBadFactor) {
  const auto c = SimulationConfig::paper_defaults();
  EXPECT_THROW(c.scaled(0.0), Error);
  EXPECT_THROW(c.scaled(-1.0), Error);
}

TEST(Config, ScaledGrowsPopulations) {
  const auto c = SimulationConfig::paper_defaults();
  const auto big = c.scaled(8.0);
  for (int s = 0; s < trace::kSubsystemCount; ++s) {
    EXPECT_EQ(big.systems[s].pm_count, c.systems[s].pm_count * 8);
    EXPECT_EQ(big.systems[s].vm_count, c.systems[s].vm_count * 8);
  }
  EXPECT_EQ(big.systems[1].vm_crash_tickets, 0);
}

}  // namespace
}  // namespace fa::sim
