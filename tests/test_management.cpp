#include "src/analysis/management.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(Management, AverageConsolidationFromSnapshots) {
  fa::testing::TinyDbBuilder b;
  const auto vm = b.add_vm(0);
  b.raw().add_monthly_snapshot({vm, 0, trace::BoxId{0}, 8});
  b.raw().add_monthly_snapshot({vm, 1, trace::BoxId{0}, 16});
  const auto pm = b.add_pm(0);
  const auto db = b.finish();
  EXPECT_DOUBLE_EQ(*average_consolidation(db, vm), 12.0);
  EXPECT_FALSE(average_consolidation(db, pm).has_value());
}

TEST(Management, MeasuredOnOffCountsOffTransitions) {
  fa::testing::TinyDbBuilder b;
  const auto vm = b.add_vm(0);
  const auto window = onoff_window();
  // Two complete cycles inside the window.
  b.raw().add_power_event({vm, window.begin + 100, false});
  b.raw().add_power_event({vm, window.begin + 200, true});
  b.raw().add_power_event({vm, window.begin + 5000, false});
  b.raw().add_power_event({vm, window.begin + 6000, true});
  const auto pm = b.add_pm(0);
  const auto db = b.finish();

  const double months =
      static_cast<double>(window.length()) / kMinutesPerMonth;
  EXPECT_NEAR(*measured_onoff_per_month(db, vm), 2.0 / months, 1e-12);
  EXPECT_FALSE(measured_onoff_per_month(db, pm).has_value());
}

TEST(Management, SeriesMeasurementMatchesEventMeasurement) {
  // The 15-min-sample screening (the paper's method) and the event-based
  // count agree on the simulated trace up to window-edge effects: a cycle
  // that starts after the final sample tick is invisible to screening, so
  // the series count may lag by at most one transition (0.5/month here).
  const auto& db = fa::testing::small_simulated_db();
  std::size_t compared = 0;
  for (const trace::ServerRecord& s : db.servers()) {
    if (s.type != trace::MachineType::kVirtual) continue;
    const auto from_events = measured_onoff_per_month(db, s.id);
    const auto from_series = measured_onoff_from_series(db, s.id);
    ASSERT_TRUE(from_events.has_value());
    ASSERT_TRUE(from_series.has_value());
    EXPECT_LE(*from_series, *from_events + 1e-9) << "server " << s.id.value;
    EXPECT_GE(*from_series, *from_events - 0.51) << "server " << s.id.value;
    ++compared;
  }
  EXPECT_GT(compared, 100u);
}

TEST(Management, SeriesMeasurementHandsOnlyVms) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  const auto db = b.finish();
  EXPECT_FALSE(measured_onoff_from_series(db, pm).has_value());
}

TEST(Management, VmWithoutEventsHasZeroFrequency) {
  fa::testing::TinyDbBuilder b;
  const auto vm = b.add_vm(0);
  const auto db = b.finish();
  EXPECT_DOUBLE_EQ(*measured_onoff_per_month(db, vm), 0.0);
}

TEST(Management, ConsolidationRatesDecreaseOnSimulatedTrace) {
  // Fig. 9: failure rate decreases with consolidation level.
  const auto& db = fa::testing::small_simulated_db();
  const auto result = consolidation_binned_rates(db, db.crash_tickets());
  // Compare a low-consolidation bin with the highest bin (both populated).
  double low = -1.0, high = -1.0;
  for (std::size_t bin = 0; bin < result.population.size(); ++bin) {
    if (result.population[bin] < 20) continue;
    if (low < 0.0) low = result.overall_rate[bin];
    high = result.overall_rate[bin];
  }
  ASSERT_GE(low, 0.0);
  EXPECT_GT(low, high);
}

TEST(Management, OnOffBinsPopulatedOnSimulatedTrace) {
  const auto& db = fa::testing::small_simulated_db();
  const auto result = onoff_binned_rates(db, db.crash_tickets());
  // Every VM lands in some bin.
  std::size_t total = 0;
  for (std::size_t n : result.population) total += n;
  EXPECT_EQ(total, db.server_count(trace::MachineType::kVirtual));
  // The zero-frequency bin holds a large share (60% at most once/month).
  EXPECT_GT(result.population[0], total / 5);
}

}  // namespace
}  // namespace fa::analysis
