#include "src/stats/ks.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/stats/exponential.h"
#include "src/stats/gamma_dist.h"
#include "src/stats/lognormal.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::stats {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = d.sample(rng);
  return xs;
}

TEST(Ks, SmallStatisticForCorrectModel) {
  const GammaDist truth(2.0, 5.0);
  const auto xs = draw(truth, 5000, 3);
  const auto result = ks_test(xs, truth);
  EXPECT_LT(result.statistic, 0.03);
  EXPECT_GT(result.p_value, 0.01);
}

TEST(Ks, LargeStatisticForWrongModel) {
  const GammaDist truth(0.5, 10.0);
  const Exponential wrong(1.0 / truth.mean());  // same mean, wrong shape
  const auto xs = draw(truth, 5000, 5);
  const auto result = ks_test(xs, wrong);
  EXPECT_GT(result.statistic, 0.08);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(Ks, StatisticExactOnTinySample) {
  // Single observation at the median: D = 0.5 exactly.
  const Exponential e(1.0);
  const std::vector<double> xs = {e.quantile(0.5)};
  EXPECT_NEAR(ks_statistic(xs, e), 0.5, 1e-12);
}

TEST(Ks, StatisticBounds) {
  const LogNormal d(0.0, 1.0);
  const auto xs = draw(d, 100, 7);
  const double stat = ks_statistic(xs, d);
  EXPECT_GT(stat, 0.0);
  EXPECT_LE(stat, 1.0);
}

TEST(Ks, PValueMonotoneInStatistic) {
  double prev = 1.1;
  for (double d : {0.01, 0.05, 0.1, 0.2, 0.5}) {
    const double p = ks_p_value(d, 1000);
    EXPECT_LT(p, prev) << "d=" << d;
    prev = p;
  }
}

TEST(Ks, PValueEdges) {
  EXPECT_NEAR(ks_p_value(0.0, 100), 1.0, 1e-12);
  EXPECT_NEAR(ks_p_value(1.0, 10000), 0.0, 1e-12);
  EXPECT_THROW(ks_p_value(-0.1, 10), Error);
  EXPECT_THROW(ks_p_value(0.1, 0), Error);
  EXPECT_THROW(ks_statistic({}, Exponential(1.0)), Error);
}

}  // namespace
}  // namespace fa::stats
