#include "src/trace/database.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::trace {
namespace {

TEST(Database, AssignsContiguousIds) {
  fa::testing::TinyDbBuilder b;
  const ServerId s0 = b.add_pm(0);
  const ServerId s1 = b.add_vm(1);
  EXPECT_EQ(s0.value, 0);
  EXPECT_EQ(s1.value, 1);
}

TEST(Database, QueriesBeforeFinalizeThrow) {
  TraceDatabase db;
  db.add_server(ServerRecord{});
  EXPECT_THROW(db.crash_tickets(), Error);
  EXPECT_THROW(db.weekly_usage_for(ServerId{0}), Error);
}

TEST(Database, MutationAfterFinalizeThrows) {
  TraceDatabase db;
  db.add_server(ServerRecord{});
  db.finalize();
  EXPECT_THROW(db.add_server(ServerRecord{}), Error);
  EXPECT_THROW(db.finalize(), Error);
}

TEST(Database, FinalizeValidatesReferentialIntegrity) {
  TraceDatabase db;
  Ticket t;
  t.is_crash = true;
  t.server = ServerId{42};  // no such server
  t.incident = db.new_incident();
  t.closed = t.opened + 10;
  db.add_ticket(std::move(t));
  EXPECT_THROW(db.finalize(), Error);
}

TEST(Database, FinalizeRejectsNegativeRepair) {
  fa::testing::TinyDbBuilder b;
  const ServerId s = b.add_pm(0);
  Ticket t;
  t.is_crash = true;
  t.server = s;
  t.incident = b.raw().new_incident();
  t.opened = 100;
  t.closed = 50;
  b.raw().add_ticket(std::move(t));
  EXPECT_THROW(b.raw().finalize(), Error);
}

TEST(Database, CrashTicketFiltersAndIndex) {
  fa::testing::TinyDbBuilder b;
  const ServerId pm = b.add_pm(0);
  const ServerId vm = b.add_vm(0);
  b.add_crash(pm, 1.0, 2.0);
  b.add_crash(pm, 5.0, 2.0);
  b.add_crash(vm, 7.0, 1.0);
  b.add_background(pm, 2.0);
  const auto db = b.finish();

  EXPECT_EQ(db.tickets().size(), 4u);
  EXPECT_EQ(db.crash_tickets().size(), 3u);
  EXPECT_EQ(db.crash_tickets_for(pm).size(), 2u);
  EXPECT_EQ(db.crash_tickets_for(vm).size(), 1u);
  EXPECT_TRUE(db.crash_tickets_for(ServerId{99}).empty());
}

TEST(Database, ServerCountsByTypeAndSubsystem) {
  fa::testing::TinyDbBuilder b;
  b.add_pm(0);
  b.add_pm(0);
  b.add_pm(1);
  b.add_vm(0);
  const auto db = b.finish();
  EXPECT_EQ(db.server_count(MachineType::kPhysical), 3u);
  EXPECT_EQ(db.server_count(MachineType::kVirtual), 1u);
  EXPECT_EQ(db.server_count(MachineType::kPhysical, 0), 2u);
  EXPECT_EQ(db.servers_of(MachineType::kPhysical, 1).size(), 1u);
}

TEST(Database, IncidentsGroupTickets) {
  fa::testing::TinyDbBuilder b;
  const ServerId s1 = b.add_pm(0);
  const ServerId s2 = b.add_pm(0);
  const auto shared = b.new_incident();
  b.add_crash(s1, 1.0, 2.0, FailureClass::kPower, shared);
  b.add_crash(s2, 1.0, 2.0, FailureClass::kPower, shared);
  b.add_crash(s1, 9.0, 2.0);
  const auto db = b.finish();
  const auto incidents = db.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  const std::size_t sizes[2] = {incidents[0].size(), incidents[1].size()};
  EXPECT_EQ(sizes[0] + sizes[1], 3u);
}

TEST(Database, WeeklyUsageSortedSpan) {
  fa::testing::TinyDbBuilder b;
  const ServerId s = b.add_pm(0);
  b.raw().add_weekly_usage({s, 2, 30.0, 40.0, {}, {}});
  b.raw().add_weekly_usage({s, 0, 10.0, 20.0, {}, {}});
  const auto db = b.finish();
  const auto usage = db.weekly_usage_for(s);
  ASSERT_EQ(usage.size(), 2u);
  EXPECT_EQ(usage[0].week, 0);
  EXPECT_EQ(usage[1].week, 2);
  EXPECT_TRUE(db.weekly_usage_for(ServerId{5}).empty());
}

TEST(Database, PowerSeriesReconstructsState) {
  fa::testing::TinyDbBuilder b;
  const ServerId s = b.add_vm(0);
  const auto window = onoff_window();
  // Off for the second hour of the window.
  b.raw().add_power_event({s, window.begin + 60, false});
  b.raw().add_power_event({s, window.begin + 120, true});
  const auto db = b.finish();
  const ObservationWindow probe{window.begin, window.begin + 240};
  const auto series = db.power_series_for(s, probe);
  ASSERT_EQ(series.size(), 16u);  // 240 min / 15 min
  EXPECT_TRUE(series[0]);         // on before the off event
  EXPECT_FALSE(series[5]);        // 75 min: off
  EXPECT_TRUE(series[8]);         // 120 min: back on
  EXPECT_TRUE(series[15]);
}

TEST(Database, PowerSeriesDefaultsToOn) {
  fa::testing::TinyDbBuilder b;
  const ServerId s = b.add_vm(0);
  const auto db = b.finish();
  const auto window = onoff_window();
  const auto series = db.power_series_for(s, window);
  for (bool on : series) EXPECT_TRUE(on);
}

TEST(Database, ConsolidationAtUsesMonthlySnapshot) {
  fa::testing::TinyDbBuilder b;
  const ServerId s = b.add_vm(0);
  b.raw().add_monthly_snapshot({s, 0, BoxId{0}, 8});
  b.raw().add_monthly_snapshot({s, 1, BoxId{0}, 16});
  const auto db = b.finish();
  const TimePoint in_month0 = db.window().begin + from_days(10.0);
  const TimePoint in_month1 = db.window().begin + from_days(40.0);
  EXPECT_EQ(db.consolidation_at(s, in_month0), 8);
  EXPECT_EQ(db.consolidation_at(s, in_month1), 16);
  const TimePoint in_month2 = db.window().begin + from_days(70.0);
  EXPECT_EQ(db.consolidation_at(s, in_month2), 0);  // no snapshot
}

TEST(Database, SnapshotConsolidationValidation) {
  fa::testing::TinyDbBuilder b;
  const ServerId s = b.add_vm(0);
  b.raw().add_monthly_snapshot({s, 0, BoxId{0}, 0});  // invalid level
  EXPECT_THROW(b.raw().finalize(), Error);
}

}  // namespace
}  // namespace fa::trace
