#include "src/trace/filters.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace fa::trace {
namespace {

class FilterTest : public ::testing::Test {
 protected:
  FilterTest() {
    fa::testing::TinyDbBuilder b;
    pm0_ = b.add_pm(0);
    pm1_ = b.add_pm(1);
    vm0_ = b.add_vm(0);
    b.add_crash(pm0_, 10.0, 2.0, FailureClass::kHardware);
    b.add_crash(pm1_, 100.0, 50.0, FailureClass::kSoftware);
    b.add_crash(vm0_, 200.0, 1.0, FailureClass::kReboot);
    b.add_background(pm0_, 20.0);
    db_ = b.finish();
  }
  ServerId pm0_, pm1_, vm0_;
  TraceDatabase db_{};
};

TEST_F(FilterTest, EmptyFilterMatchesEverything) {
  EXPECT_EQ(TicketFilter{}.apply(db_).size(), db_.tickets().size());
}

TEST_F(FilterTest, CrashOnly) {
  EXPECT_EQ(TicketFilter{}.crash_only().apply(db_).size(), 3u);
}

TEST_F(FilterTest, BySubsystem) {
  const auto sys0 = TicketFilter{}.crash_only().subsystem(0).apply(db_);
  ASSERT_EQ(sys0.size(), 2u);  // pm0 and vm0 crashes
  for (const Ticket* t : sys0) EXPECT_EQ(t->subsystem, 0);
}

TEST_F(FilterTest, ByMachineType) {
  const auto vms =
      TicketFilter{}.machine_type(MachineType::kVirtual).apply(db_);
  ASSERT_EQ(vms.size(), 1u);
  EXPECT_EQ(vms[0]->server, vm0_);
}

TEST_F(FilterTest, ByTimeWindowHalfOpen) {
  const auto year = db_.window();
  const auto filter = TicketFilter{}.crash_only().opened_between(
      year.begin + from_days(10.0), year.begin + from_days(100.0));
  const auto hits = filter.apply(db_);
  ASSERT_EQ(hits.size(), 1u);  // day-10 inclusive, day-100 exclusive
  EXPECT_EQ(hits[0]->server, pm0_);
}

TEST_F(FilterTest, ByMinimumRepair) {
  const auto slow =
      TicketFilter{}.crash_only().repair_at_least(from_hours(10.0)).apply(
          db_);
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0]->server, pm1_);
}

TEST_F(FilterTest, ByServer) {
  EXPECT_EQ(TicketFilter{}.server(pm0_).apply(db_).size(), 2u);  // + bg
  EXPECT_EQ(TicketFilter{}.crash_only().server(pm0_).apply(db_).size(), 1u);
}

TEST_F(FilterTest, ConjunctionOfPredicates) {
  const auto filter = TicketFilter{}
                          .crash_only()
                          .machine_type(MachineType::kPhysical)
                          .subsystem(1);
  const auto hits = filter.apply(db_);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->server, pm1_);
}

TEST_F(FilterTest, ApplyOnSelection) {
  const auto crashes = db_.crash_tickets();
  const auto refined =
      TicketFilter{}.machine_type(MachineType::kVirtual).apply(db_, crashes);
  ASSERT_EQ(refined.size(), 1u);
  EXPECT_EQ(refined[0]->server, vm0_);
}

}  // namespace
}  // namespace fa::trace
