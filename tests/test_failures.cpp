#include "src/sim/failures.h"

#include "src/trace/trace_writer.h"

#include <map>
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

namespace fa::sim {
namespace {

class FailuresTest : public ::testing::Test {
 protected:
  static const SimulationConfig& config() {
    static const SimulationConfig c =
        SimulationConfig::paper_defaults().scaled(0.3);
    return c;
  }
  static const Fleet& fleet() {
    static const Fleet f = [] {
      Rng rng(5);
      return build_fleet(config(), rng);
    }();
    return f;
  }
  static const std::vector<FailureEvent>& events() {
    static const std::vector<FailureEvent> e = [] {
      const HazardModel hazard(config(), fleet());
      trace::TraceDatabase db;
      for (const auto& s : fleet().servers) db.add_server(s);
      trace::DatabaseTraceWriter writer(db);
      return generate_failures(config(), fleet(), hazard, writer);
    }();
    return e;
  }
};

TEST_F(FailuresTest, EventsWithinTicketWindowAndSorted) {
  const auto year = ticket_window();
  ASSERT_FALSE(events().empty());
  TimePoint prev = year.begin;
  for (const FailureEvent& e : events()) {
    EXPECT_TRUE(year.contains(e.at));
    EXPECT_GE(e.at, prev);
    prev = e.at;
  }
}

TEST_F(FailuresTest, EventsRespectVmCreation) {
  for (const FailureEvent& e : events()) {
    EXPECT_GE(e.at, fleet().profile(e.server).creation);
  }
}

TEST_F(FailuresTest, AftershocksShareIncidentAndServer) {
  // Aftershocks re-fail a server already present in the incident.
  std::unordered_map<trace::IncidentId,
                     std::unordered_set<trace::ServerId>>
      primaries;
  for (const FailureEvent& e : events()) {
    if (!e.is_aftershock) primaries[e.incident].insert(e.server);
  }
  for (const FailureEvent& e : events()) {
    if (!e.is_aftershock) continue;
    const auto it = primaries.find(e.incident);
    ASSERT_NE(it, primaries.end());
    EXPECT_TRUE(it->second.contains(e.server));
  }
}

TEST_F(FailuresTest, IncidentSizesWithinClassCaps) {
  std::unordered_map<trace::IncidentId,
                     std::unordered_set<trace::ServerId>>
      servers;
  std::unordered_map<trace::IncidentId, trace::FailureClass> incident_class;
  for (const FailureEvent& e : events()) {
    servers[e.incident].insert(e.server);
    if (!e.is_aftershock) incident_class.try_emplace(e.incident, e.recorded_class);
  }
  for (const auto& [incident, set] : servers) {
    const auto cls = static_cast<std::size_t>(incident_class[incident]);
    EXPECT_LE(static_cast<int>(set.size()),
              config().incident_size[cls].max_extra + 1);
  }
}

TEST_F(FailuresTest, MultiServerIncidentsShareSubsystemStructure) {
  // All servers of one incident live in the same subsystem (propagation is
  // through boxes, app groups and power domains, all subsystem-local).
  std::unordered_map<trace::IncidentId, trace::Subsystem> sys_of;
  for (const FailureEvent& e : events()) {
    const auto sys = fleet().server(e.server).subsystem;
    const auto [it, fresh] = sys_of.try_emplace(e.incident, sys);
    if (!fresh) {
      EXPECT_EQ(it->second, sys);
    }
  }
}

TEST_F(FailuresTest, OtherFractionApproximatesConfig) {
  // Primary events recorded as "other" per subsystem vs the configured
  // vagueness share.
  std::array<int, trace::kSubsystemCount> other{}, total{};
  std::unordered_set<std::int32_t> seen;
  for (const FailureEvent& e : events()) {
    if (e.is_aftershock) continue;
    if (!seen.insert(e.incident.value).second) continue;  // root only
    const auto sys = fleet().server(e.server).subsystem;
    ++total[sys];
    other[sys] += e.recorded_class == trace::FailureClass::kOther;
  }
  for (int sys = 0; sys < trace::kSubsystemCount; ++sys) {
    if (total[sys] < 100) continue;
    const double measured =
        static_cast<double>(other[sys]) / total[sys];
    EXPECT_NEAR(measured, config().systems[sys].other_fraction, 0.08)
        << "sys " << sys;
  }
}

TEST_F(FailuresTest, AftershockShareMatchesGeometricChain) {
  std::size_t shocks = 0;
  for (const FailureEvent& e : events()) shocks += e.is_aftershock;
  const double share = static_cast<double>(shocks) / events().size();
  // Chain mean q/(1-q) with q in [0.2, 0.275] => share in ~[0.17, 0.22],
  // reduced slightly by window truncation.
  EXPECT_GT(share, 0.10);
  EXPECT_LT(share, 0.30);
}

TEST_F(FailuresTest, DeterministicForSeed) {
  const HazardModel hazard(config(), fleet());
  trace::TraceDatabase db1, db2;
  for (const auto& s : fleet().servers) {
    db1.add_server(s);
    db2.add_server(s);
  }
  trace::DatabaseTraceWriter w1(db1), w2(db2);
  const auto a = generate_failures(config(), fleet(), hazard, w1);
  const auto b = generate_failures(config(), fleet(), hazard, w2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].server, b[i].server);
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].recorded_class, b[i].recorded_class);
  }
}

}  // namespace
}  // namespace fa::sim
