#include "src/trace/columnar_io.h"

#include <unistd.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/analysis/out_of_core.h"
#include "src/inject/corruptor.h"
#include "src/sim/simulator.h"
#include "src/trace/csv_io.h"
#include "src/trace/filters.h"
#include "src/trace/sanitize.h"
#include "src/trace/trace_writer.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace fa::trace {
namespace {

namespace fs = std::filesystem;

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open " << path;
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Field-by-field record equality between two finalized databases.
void expect_databases_equal(const TraceDatabase& a, const TraceDatabase& b) {
  EXPECT_EQ(a.window().begin, b.window().begin);
  EXPECT_EQ(a.window().end, b.window().end);
  EXPECT_EQ(a.monitoring().begin, b.monitoring().begin);
  EXPECT_EQ(a.monitoring().end, b.monitoring().end);
  EXPECT_EQ(a.onoff_tracking().begin, b.onoff_tracking().begin);
  EXPECT_EQ(a.onoff_tracking().end, b.onoff_tracking().end);

  ASSERT_EQ(a.servers().size(), b.servers().size());
  for (std::size_t i = 0; i < a.servers().size(); ++i) {
    const ServerRecord& x = a.servers()[i];
    const ServerRecord& y = b.servers()[i];
    ASSERT_EQ(x.id, y.id);
    ASSERT_EQ(x.type, y.type);
    ASSERT_EQ(x.subsystem, y.subsystem);
    ASSERT_EQ(x.cpu_count, y.cpu_count);
    ASSERT_EQ(x.memory_gb, y.memory_gb);
    ASSERT_EQ(x.disk_gb, y.disk_gb);
    ASSERT_EQ(x.disk_count, y.disk_count);
    ASSERT_EQ(x.host_box, y.host_box);
    ASSERT_EQ(x.first_record, y.first_record);
  }
  ASSERT_EQ(a.tickets().size(), b.tickets().size());
  for (std::size_t i = 0; i < a.tickets().size(); ++i) {
    const Ticket& x = a.tickets()[i];
    const Ticket& y = b.tickets()[i];
    ASSERT_EQ(x.id, y.id);
    ASSERT_EQ(x.incident, y.incident);
    ASSERT_EQ(x.server, y.server);
    ASSERT_EQ(x.subsystem, y.subsystem);
    ASSERT_EQ(x.is_crash, y.is_crash);
    ASSERT_EQ(x.true_class, y.true_class);
    ASSERT_EQ(x.opened, y.opened);
    ASSERT_EQ(x.closed, y.closed);
    ASSERT_EQ(x.description, y.description);
    ASSERT_EQ(x.resolution, y.resolution);
  }
  for (const ServerRecord& s : a.servers()) {
    const auto ua = a.weekly_usage_for(s.id);
    const auto ub = b.weekly_usage_for(s.id);
    ASSERT_EQ(ua.size(), ub.size());
    for (std::size_t i = 0; i < ua.size(); ++i) {
      ASSERT_EQ(ua[i].week, ub[i].week);
      ASSERT_EQ(ua[i].cpu_util, ub[i].cpu_util);
      ASSERT_EQ(ua[i].mem_util, ub[i].mem_util);
      ASSERT_EQ(ua[i].disk_util, ub[i].disk_util);
      ASSERT_EQ(ua[i].net_kbps, ub[i].net_kbps);
    }
    const auto pa = a.power_events_for(s.id);
    const auto pb = b.power_events_for(s.id);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i].at, pb[i].at);
      ASSERT_EQ(pa[i].powered_on, pb[i].powered_on);
    }
    const auto sa = a.snapshots_for(s.id);
    const auto sb = b.snapshots_for(s.id);
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
      ASSERT_EQ(sa[i].month, sb[i].month);
      ASSERT_EQ(sa[i].box, sb[i].box);
      ASSERT_EQ(sa[i].consolidation, sb[i].consolidation);
    }
  }
  EXPECT_EQ(a.incidents().size(), b.incidents().size());
}

class ColumnarIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("fa_columnar_io_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

TEST_F(ColumnarIoTest, IsColumnarFileDetection) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  save_columnar(db, path("trace.fac"));
  EXPECT_TRUE(is_columnar_file(path("trace.fac")));

  save_database(db, path("csvdir"));
  EXPECT_FALSE(is_columnar_file(path("csvdir")));
  EXPECT_FALSE(is_columnar_file(path("csvdir") + "/tickets.csv"));
  EXPECT_FALSE(is_columnar_file(path("missing.fac")));
}

// The tentpole acceptance check: CSV -> columnar -> CSV is byte-exact.
TEST_F(ColumnarIoTest, CsvColumnarCsvRoundTripIsByteExact) {
  save_database(fa::testing::small_simulated_db(), path("in"));

  const TraceDatabase from_csv = load_database(path("in"));
  save_columnar(from_csv, path("trace.fac"));
  const TraceDatabase from_fac = load_columnar(path("trace.fac"));
  save_database(from_fac, path("out"));

  for (const char* file :
       {"meta.csv", "servers.csv", "tickets.csv", "weekly_usage.csv",
        "power_events.csv", "snapshots.csv"}) {
    EXPECT_EQ(read_file(dir_ / "in" / file), read_file(dir_ / "out" / file))
        << file << " changed across the columnar round trip";
  }
}

TEST_F(ColumnarIoTest, LoadColumnarPreservesEveryRecord) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  save_columnar(db, path("trace.fac"));
  const TraceDatabase loaded = load_columnar(path("trace.fac"));
  EXPECT_TRUE(loaded.finalized());
  expect_databases_equal(db, loaded);
}

TEST_F(ColumnarIoTest, SmallChunksRoundTripAcrossManyChunks) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  const FileReport report = save_columnar(db, path("tiny.fac"), 64);

  ChunkReader reader(path("tiny.fac"));
  EXPECT_GT(reader.chunk_count(columnar::Table::kTickets), 1u);
  EXPECT_EQ(reader.row_count(columnar::Table::kTickets), db.tickets().size());
  EXPECT_EQ(report.rows[static_cast<int>(columnar::Table::kServers)],
            db.servers().size());

  expect_databases_equal(db, load_columnar(path("tiny.fac")));
}

TEST_F(ColumnarIoTest, CustomWindowsAndIncidentCounterRoundTrip) {
  TraceDatabase db;
  const ObservationWindow monitoring{0, 1000 * kMinutesPerDay};
  const ObservationWindow ticket{100 * kMinutesPerDay, 600 * kMinutesPerDay};
  const ObservationWindow onoff{200 * kMinutesPerDay, 260 * kMinutesPerDay};
  db.set_windows(ticket, monitoring, onoff);
  ServerRecord s;
  s.type = MachineType::kPhysical;
  s.first_record = monitoring.begin;
  const ServerId server = db.add_server(s);
  Ticket t;
  t.incident = db.new_incident();
  t.server = server;
  t.is_crash = true;
  t.opened = ticket.begin + from_days(1.0);
  t.closed = t.opened + from_hours(2.0);
  db.add_ticket(std::move(t));
  db.finalize();

  save_columnar(db, path("tiny.fac"));
  ChunkReader reader(path("tiny.fac"));
  EXPECT_EQ(reader.window().begin, ticket.begin);
  EXPECT_EQ(reader.window().end, ticket.end);
  EXPECT_EQ(reader.monitoring().end, monitoring.end);
  EXPECT_EQ(reader.onoff_tracking().begin, onoff.begin);
  EXPECT_EQ(reader.next_incident(), 1);

  const TraceDatabase loaded = load_columnar(path("tiny.fac"));
  EXPECT_EQ(loaded.window().begin, ticket.begin);
  EXPECT_EQ(loaded.onoff_tracking().end, onoff.end);
  // The loaded database hands out fresh incident ids above the persisted
  // counter (no reuse after a round trip).
  TraceDatabase reopened = load_columnar(path("tiny.fac"));
  EXPECT_EQ(reopened.new_incident(), IncidentId{1});
}

TEST_F(ColumnarIoTest, MmapAndBufferedReadsAreEquivalent) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  save_columnar(db, path("trace.fac"), 256);

  ChunkReader mapped(path("trace.fac"), /*use_mmap=*/true);
  ChunkReader buffered(path("trace.fac"), /*use_mmap=*/false);
  EXPECT_TRUE(mapped.mmapped());
  EXPECT_FALSE(buffered.mmapped());

  for (columnar::Table table : columnar::kAllTables) {
    ASSERT_EQ(mapped.chunk_count(table), buffered.chunk_count(table));
    for (std::size_t c = 0; c < mapped.chunk_count(table); ++c) {
      const columnar::ChunkView va = mapped.chunk(table, c);
      const columnar::ChunkView vb = buffered.chunk(table, c);
      ASSERT_EQ(va.rows(), vb.rows());
      ASSERT_EQ(va.column_count(), vb.column_count());
    }
  }

  expect_databases_equal(load_columnar(path("trace.fac"), true),
                         load_columnar(path("trace.fac"), false));
}

TEST_F(ColumnarIoTest, TruncatedFilesAreRejected) {
  save_columnar(fa::testing::small_simulated_db(), path("trace.fac"), 512);
  const std::string bytes = read_file(dir_ / "trace.fac");
  ASSERT_GT(bytes.size(), 64u);

  // Truncation points: empty, header only, mid-chunk, mid-footer, one byte
  // short of a valid tail.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{8}, bytes.size() / 2, bytes.size() - 16,
        bytes.size() - 1}) {
    write_file(dir_ / "cut.fac", bytes.substr(0, keep));
    EXPECT_THROW(ChunkReader reader(path("cut.fac")), Error)
        << "accepted a file truncated to " << keep << " bytes";
  }
}

TEST_F(ColumnarIoTest, CorruptChunkFailsItsChecksum) {
  save_columnar(fa::testing::small_simulated_db(), path("trace.fac"), 512);
  std::string bytes = read_file(dir_ / "trace.fac");

  ChunkReader clean(path("trace.fac"));
  const columnar::ChunkInfo& first =
      clean.chunk_info(columnar::Table::kServers, 0);
  // Flip one bit inside the first server chunk's payload. The footer still
  // parses, so the reader opens — the chunk read must fail its checksum.
  bytes[first.offset + first.size / 2] ^= 0x01;
  write_file(dir_ / "bad.fac", bytes);

  ChunkReader reader(path("bad.fac"));
  EXPECT_THROW(reader.chunk(columnar::Table::kServers, 0), Error);
  EXPECT_THROW(load_columnar(path("bad.fac")), Error);
}

TEST_F(ColumnarIoTest, CorruptFooterIsRejectedAtOpen) {
  save_columnar(fa::testing::small_simulated_db(), path("trace.fac"));
  std::string bytes = read_file(dir_ / "trace.fac");
  // The footer payload sits just before the 24-byte tail.
  bytes[bytes.size() - 32] ^= 0x01;
  write_file(dir_ / "bad.fac", bytes);
  EXPECT_THROW(ChunkReader reader(path("bad.fac")), Error);
}

TEST_F(ColumnarIoTest, WrongMagicIsRejected) {
  write_file(dir_ / "bogus.fac", std::string(64, 'x'));
  EXPECT_FALSE(is_columnar_file(path("bogus.fac")));
  EXPECT_THROW(ChunkReader reader(path("bogus.fac")), Error);
  EXPECT_THROW(load_columnar(path("bogus.fac")), Error);
}

TEST_F(ColumnarIoTest, UnfinishedWriterLeavesUnreadableFile) {
  {
    ColumnarWriter writer(path("partial.fac"));
    ServerRecord s;
    s.type = MachineType::kPhysical;
    writer.add_server(s);
    // No finish(): no footer, no tail.
  }
  EXPECT_THROW(ChunkReader reader(path("partial.fac")), Error);
}

TEST_F(ColumnarIoTest, ReaderReportMatchesWriterReport) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  const FileReport written = save_columnar(db, path("trace.fac"), 1024);
  const FileReport read = ChunkReader(path("trace.fac")).report();

  EXPECT_EQ(written.rows, read.rows);
  EXPECT_EQ(written.chunks, read.chunks);
  EXPECT_EQ(written.data_bytes, read.data_bytes);
  EXPECT_EQ(written.footer_bytes, read.footer_bytes);
  ASSERT_EQ(written.columns.size(), read.columns.size());
  for (std::size_t i = 0; i < written.columns.size(); ++i) {
    EXPECT_EQ(written.columns[i].name, read.columns[i].name);
    EXPECT_EQ(written.columns[i].bytes, read.columns[i].bytes);
    EXPECT_EQ(written.columns[i].dict_entries, read.columns[i].dict_entries);
  }
}

// The streamed writer must emit bit-identical files at any --threads.
TEST_F(ColumnarIoTest, StreamedWritesAreThreadCountDeterministic) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.05);

  ThreadPool::set_default_thread_count(1);
  {
    ColumnarTraceWriter writer(path("t1.fac"));
    sim::simulate_to(config, writer);
  }
  ThreadPool::set_default_thread_count(8);
  {
    ColumnarTraceWriter writer(path("t8.fac"));
    sim::simulate_to(config, writer);
  }
  ThreadPool::set_default_thread_count(0);

  const std::string a = read_file(dir_ / "t1.fac");
  const std::string b = read_file(dir_ / "t8.fac");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b) << "streamed columnar output depends on thread count";
}

// A batch ticket commit encodes its columns in parallel; the bytes must be
// identical to the equivalent sequence of per-ticket appends at any thread
// count, including batches that straddle chunk boundaries.
TEST_F(ColumnarIoTest, BatchTicketCommitIsByteIdenticalToPerTicket) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  ASSERT_GT(db.tickets().size(), 256u);  // several 256-row chunks

  {
    ColumnarWriter writer(path("single.fac"), 256);
    for (const Ticket& t : db.tickets()) writer.add_ticket(t);
    writer.finish();
  }
  const std::string reference = read_file(dir_ / "single.fac");
  ASSERT_FALSE(reference.empty());

  for (std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool::set_default_thread_count(threads);
    const std::string name = "batch" + std::to_string(threads) + ".fac";
    ColumnarWriter writer(path(name), 256);
    writer.add_tickets(db.tickets());
    writer.finish();
    EXPECT_EQ(read_file(dir_ / name), reference)
        << "batch commit bytes diverge at " << threads << " threads";
  }
  ThreadPool::set_default_thread_count(0);
}

TEST_F(ColumnarIoTest, StreamedFileMatchesInMemorySimulation) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.05);
  {
    ColumnarTraceWriter writer(path("stream.fac"));
    sim::simulate_to(config, writer);
  }
  expect_databases_equal(sim::simulate(config),
                         load_columnar(path("stream.fac")));
}

// ---- predicate pushdown (filters.h) ----

TEST_F(ColumnarIoTest, PushdownScanMatchesInMemoryFilter) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  save_columnar(db, path("trace.fac"), 256);
  ChunkReader reader(path("trace.fac"));

  const ObservationWindow& w = db.window();
  const std::vector<TicketFilter> filters = {
      TicketFilter{},
      TicketFilter{}.crash_only(),
      TicketFilter{}.crash_only().subsystem(Subsystem{2}),
      TicketFilter{}.machine_type(MachineType::kVirtual),
      TicketFilter{}.opened_between(w.begin, w.begin + w.length() / 4),
      TicketFilter{}.server(db.servers().front().id),
      TicketFilter{}.crash_only().repair_at_least(from_hours(4.0)),
  };
  for (const TicketFilter& filter : filters) {
    const std::vector<const Ticket*> expected = filter.apply(db);
    const std::vector<Ticket> actual = filter.scan_columnar(reader);
    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i]->id);
      EXPECT_EQ(actual[i].opened, expected[i]->opened);
      EXPECT_EQ(actual[i].description, expected[i]->description);
    }
  }
}

TEST_F(ColumnarIoTest, PushdownSkipsChunksThatCannotMatch) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  save_columnar(db, path("trace.fac"), 128);
  ChunkReader reader(path("trace.fac"));

  // A time range past the observation window cannot match any chunk.
  const TicketFilter none =
      TicketFilter{}.opened_between(db.window().end + from_days(1.0),
                                    db.window().end + from_days(2.0));
  std::size_t skipped = 0;
  const std::size_t chunks = reader.chunk_count(columnar::Table::kTickets);
  for (std::size_t c = 0; c < chunks; ++c) {
    skipped +=
        !none.chunk_may_match(reader.chunk_info(columnar::Table::kTickets, c));
  }
  EXPECT_EQ(skipped, chunks);
  EXPECT_TRUE(none.scan_columnar(reader).empty());

  // A single-server predicate must skip at least the chunks whose id range
  // excludes that server (tickets are appended roughly in time order, but
  // min/max still prune the low-id prefix chunks for a high server id).
  const TicketFilter one = TicketFilter{}.server(db.servers().back().id);
  std::size_t may_match = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    may_match +=
        one.chunk_may_match(reader.chunk_info(columnar::Table::kTickets, c));
  }
  EXPECT_LE(may_match, chunks);
}

// ---- out-of-core aggregation (analysis/out_of_core.h) ----

TEST_F(ColumnarIoTest, OutOfCoreSummaryMatchesInMemory) {
  const TraceDatabase& db = fa::testing::small_simulated_db();
  save_columnar(db, path("trace.fac"), 512);

  const analysis::OutOfCoreSummary streamed =
      analysis::summarize_columnar(path("trace.fac"));
  const analysis::OutOfCoreSummary in_memory =
      analysis::summarize_database(db);
  EXPECT_EQ(streamed, in_memory);

  // Buffered reads must agree with the mmap path too.
  EXPECT_EQ(analysis::summarize_columnar(path("trace.fac"), false), in_memory);
}

// ---- sanitize degradation (satellite: quarantine stability) ----

// A columnar round trip must not change what the sanitizer quarantines:
// corrupting the original export and the round-tripped export with the same
// seed yields identical defect reports and quarantined row sets.
TEST_F(ColumnarIoTest, SanitizeQuarantinesSameRowsAfterColumnarRoundTrip) {
  save_database(fa::testing::small_simulated_db(), path("orig"));
  save_columnar(load_database(path("orig")), path("trace.fac"));
  save_database(load_columnar(path("trace.fac")), path("roundtrip"));

  const auto mix = fa::inject::DefectMix::uniform(0.05);
  fa::inject::corrupt_database(path("orig"), path("orig_dirty"), 11, mix);
  fa::inject::corrupt_database(path("roundtrip"), path("rt_dirty"), 11, mix);

  const SanitizedDatabase a = sanitize_database(path("orig_dirty"));
  const SanitizedDatabase b = sanitize_database(path("rt_dirty"));

  ASSERT_GT(a.report.total_defects(), 0u);
  EXPECT_EQ(a.report.counts_csv(), b.report.counts_csv());
  EXPECT_EQ(a.report.defects_csv(), b.report.defects_csv());
  for (const char* file : {"tickets.csv", "weekly_usage.csv"}) {
    EXPECT_EQ(a.report.quarantined_rows(file), b.report.quarantined_rows(file))
        << file;
  }
  expect_databases_equal(a.db, b.db);
}

}  // namespace
}  // namespace fa::trace
