#include "src/text/features.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::text {
namespace {

const std::vector<std::string> kCorpus = {
    "disk failed disk replaced",
    "disk error on server",
    "network switch rebooted",
    "network cable replaced",
};

TEST(Vectorizer, VocabularyRespectsMinDocumentFrequency) {
  VectorizerOptions options;
  options.min_document_frequency = 2;
  const auto v = Vectorizer::fit(kCorpus, options);
  const auto& vocab = v.vocabulary();
  // "disk" (3 docs), "network" (2), "replaced" (2) survive; "switch" (1)
  // does not.
  EXPECT_NE(std::find(vocab.begin(), vocab.end(), "disk"), vocab.end());
  EXPECT_NE(std::find(vocab.begin(), vocab.end(), "network"), vocab.end());
  EXPECT_NE(std::find(vocab.begin(), vocab.end(), "replaced"), vocab.end());
  EXPECT_EQ(std::find(vocab.begin(), vocab.end(), "switch"), vocab.end());
}

TEST(Vectorizer, TransformDimensionMatchesVocabulary) {
  VectorizerOptions options;
  options.min_document_frequency = 1;
  const auto v = Vectorizer::fit(kCorpus, options);
  const auto vec = v.transform(kCorpus[0]);
  EXPECT_EQ(vec.size(), v.dimension());
}

TEST(Vectorizer, L2NormalizationUnitLength) {
  VectorizerOptions options;
  options.min_document_frequency = 1;
  const auto v = Vectorizer::fit(kCorpus, options);
  const auto vec = v.transform("disk error network");
  double norm = 0.0;
  for (double x : vec) norm += x * x;
  EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-12);
}

TEST(Vectorizer, UnseenWordsIgnored) {
  VectorizerOptions options;
  options.min_document_frequency = 1;
  const auto v = Vectorizer::fit(kCorpus, options);
  const auto vec = v.transform("quantum blockchain nonsense");
  for (double x : vec) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Vectorizer, IdfDownweightsCommonWords) {
  // "disk" appears in 3 of 4 docs, "cable" in 1: with IDF the rare word
  // should get more weight for equal term frequency.
  VectorizerOptions options;
  options.min_document_frequency = 1;
  options.l2_normalize = false;
  const auto v = Vectorizer::fit(kCorpus, options);
  const auto vec = v.transform("disk cable");
  const auto& vocab = v.vocabulary();
  double disk_w = 0.0, cable_w = 0.0;
  for (std::size_t i = 0; i < vocab.size(); ++i) {
    if (vocab[i] == "disk") disk_w = vec[i];
    if (vocab[i] == "cable") cable_w = vec[i];
  }
  EXPECT_GT(cable_w, disk_w);
  EXPECT_GT(disk_w, 0.0);
}

TEST(Vectorizer, RepeatedWordsIncreaseTermFrequency) {
  VectorizerOptions options;
  options.min_document_frequency = 1;
  options.l2_normalize = false;
  options.use_idf = false;
  const auto v = Vectorizer::fit(kCorpus, options);
  const auto once = v.transform("disk");
  const auto thrice = v.transform("disk disk disk");
  double w1 = 0.0, w3 = 0.0;
  for (std::size_t i = 0; i < v.vocabulary().size(); ++i) {
    if (v.vocabulary()[i] == "disk") {
      w1 = once[i];
      w3 = thrice[i];
    }
  }
  EXPECT_DOUBLE_EQ(w3, 3.0 * w1);
}

TEST(Vectorizer, DeterministicVocabularyOrder) {
  VectorizerOptions options;
  options.min_document_frequency = 1;
  const auto a = Vectorizer::fit(kCorpus, options);
  const auto b = Vectorizer::fit(kCorpus, options);
  EXPECT_EQ(a.vocabulary(), b.vocabulary());
}

TEST(Vectorizer, RejectsDegenerateInput) {
  VectorizerOptions options;
  EXPECT_THROW(Vectorizer::fit({}, options), fa::Error);
  options.min_document_frequency = 100;
  EXPECT_THROW(Vectorizer::fit(kCorpus, options), fa::Error);
}

}  // namespace
}  // namespace fa::text
