#include "src/analysis/reliability.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(Reliability, ExactMetricsOnHandBuiltTrace) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  b.add_pm(0);  // never fails
  b.add_crash(pm1, 10.0, 12.0);
  b.add_crash(pm1, 110.0, 36.0);
  const auto db = b.finish();
  const auto report = reliability_report(db, db.crash_tickets(), {});

  EXPECT_EQ(report.servers, 2u);
  EXPECT_EQ(report.failures, 2u);
  // Two PMs exposed the full 365-day year; two failures.
  EXPECT_NEAR(report.mtbf_days, 365.0, 1e-9);
  EXPECT_NEAR(report.mttr_hours, 24.0, 1e-9);
  EXPECT_NEAR(report.annualized_failure_rate, 1.0, 1e-9);
  ASSERT_TRUE(report.mean_interfailure_days.has_value());
  EXPECT_NEAR(*report.mean_interfailure_days, 100.0, 1e-9);
  const double mtbf_hours = 365.0 * 24.0;
  EXPECT_NEAR(report.availability, mtbf_hours / (mtbf_hours + 24.0), 1e-12);
}

TEST(Reliability, NoFailuresGivesPerfectAvailability) {
  fa::testing::TinyDbBuilder b;
  b.add_pm(0);
  const auto db = b.finish();
  const auto report = reliability_report(db, {}, {});
  EXPECT_EQ(report.failures, 0u);
  EXPECT_DOUBLE_EQ(report.availability, 1.0);
  EXPECT_FALSE(report.mean_interfailure_days.has_value());
  EXPECT_FALSE(report.interfailure_fit.has_value());
}

TEST(Reliability, VmExposureRespectsCreationDate) {
  fa::testing::TinyDbBuilder b;
  // VM first observed halfway through the ticket year.
  const double offset =
      to_days(ticket_window().begin - monitoring_window().begin);
  const auto vm = b.add_vm(0, 2, 2.0, 128.0, 2, offset + 182.5);
  b.add_crash(vm, 200.0, 10.0);
  const auto db = b.finish();
  const auto report = reliability_report(
      db, db.crash_tickets(), {trace::MachineType::kVirtual, std::nullopt});
  EXPECT_NEAR(report.mtbf_days, 182.5, 0.1);
  EXPECT_NEAR(report.annualized_failure_rate, 2.0, 0.01);
}

TEST(Reliability, EmptyScopeThrows) {
  fa::testing::TinyDbBuilder b;
  b.add_pm(0);
  const auto db = b.finish();
  EXPECT_THROW(
      reliability_report(db, {}, {trace::MachineType::kVirtual, std::nullopt}),
      Error);
}

TEST(Reliability, SurvivalProbabilityExponentialForm) {
  ReliabilityReport report;
  report.mtbf_days = 100.0;
  EXPECT_DOUBLE_EQ(survival_probability(report, 0.0), 1.0);
  EXPECT_NEAR(survival_probability(report, 100.0), std::exp(-1.0), 1e-12);
  EXPECT_GT(survival_probability(report, 10.0),
            survival_probability(report, 20.0));
  EXPECT_THROW(survival_probability(report, -1.0), Error);
}

TEST(Reliability, SimulatedTraceMatchesPaperHeadlines) {
  const auto& db = fa::testing::small_simulated_db();
  const auto failures = db.crash_tickets();
  const auto pm = reliability_report(
      db, failures, {trace::MachineType::kPhysical, std::nullopt});
  const auto vm = reliability_report(
      db, failures, {trace::MachineType::kVirtual, std::nullopt});

  // PMs fail more often and take longer to repair.
  EXPECT_GT(pm.annualized_failure_rate, vm.annualized_failure_rate);
  EXPECT_GT(pm.mttr_hours, vm.mttr_hours);
  // Availability is high but not perfect for both.
  EXPECT_GT(pm.availability, 0.99);
  EXPECT_LT(pm.availability, 1.0);
  EXPECT_GT(vm.availability, pm.availability);
  // Fits exist and are heavy-tailed (not exponential).
  ASSERT_TRUE(pm.interfailure_fit.has_value());
  EXPECT_NE(pm.interfailure_fit->dist->name(), "exponential");
}

}  // namespace
}  // namespace fa::analysis
