// The parallel execution layer must be a pure scheduling concern: every
// artifact (simulated trace, analysis pipeline, k-means, bootstrap) has to
// be bit-identical no matter how many threads run it. These tests pin that
// contract at 1, 2 and 8 threads, and cover the artifact-cache identity
// guarantees the bench layer relies on.
#include <gtest/gtest.h>

#include <vector>

#include "src/analysis/artifact_cache.h"
#include "src/analysis/pipeline.h"
#include "src/sim/simulator.h"
#include "src/stats/bootstrap.h"
#include "src/stats/kmeans.h"
#include "src/util/thread_pool.h"

namespace fa {
namespace {

constexpr std::size_t kThreadCounts[] = {1, 2, 8};

// Restores the global pool size after each test so the suite's other tests
// see the default configuration.
class ParallelDeterminism : public ::testing::Test {
 protected:
  void TearDown() override { ThreadPool::set_default_thread_count(0); }
};

void expect_same_trace(const trace::TraceDatabase& a,
                       const trace::TraceDatabase& b) {
  ASSERT_EQ(a.tickets().size(), b.tickets().size());
  for (std::size_t i = 0; i < a.tickets().size(); ++i) {
    const trace::Ticket& x = a.tickets()[i];
    const trace::Ticket& y = b.tickets()[i];
    ASSERT_EQ(x.server, y.server) << "ticket " << i;
    ASSERT_EQ(x.incident.value, y.incident.value) << "ticket " << i;
    ASSERT_EQ(x.opened, y.opened) << "ticket " << i;
    ASSERT_EQ(x.closed, y.closed) << "ticket " << i;
    ASSERT_EQ(x.is_crash, y.is_crash) << "ticket " << i;
    ASSERT_EQ(x.true_class, y.true_class) << "ticket " << i;
    ASSERT_EQ(x.description, y.description) << "ticket " << i;
    ASSERT_EQ(x.resolution, y.resolution) << "ticket " << i;
  }
  ASSERT_EQ(a.servers().size(), b.servers().size());
  for (const trace::ServerRecord& s : a.servers()) {
    const auto ua = a.weekly_usage_for(s.id);
    const auto ub = b.weekly_usage_for(s.id);
    ASSERT_EQ(ua.size(), ub.size()) << "server " << s.id.value;
    for (std::size_t i = 0; i < ua.size(); ++i) {
      ASSERT_EQ(ua[i].cpu_util, ub[i].cpu_util) << "server " << s.id.value;
      ASSERT_EQ(ua[i].mem_util, ub[i].mem_util) << "server " << s.id.value;
    }
    const auto pa = a.power_events_for(s.id);
    const auto pb = b.power_events_for(s.id);
    ASSERT_EQ(pa.size(), pb.size()) << "server " << s.id.value;
    for (std::size_t i = 0; i < pa.size(); ++i) {
      ASSERT_EQ(pa[i].at, pb[i].at) << "server " << s.id.value;
    }
  }
}

TEST_F(ParallelDeterminism, SimulateIdenticalAcrossThreadCounts) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.05);
  ThreadPool::set_default_thread_count(1);
  const auto reference = sim::simulate(config);
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_default_thread_count(threads);
    const auto db = sim::simulate(config);
    expect_same_trace(reference, db);
  }
}

TEST_F(ParallelDeterminism, PipelineIdenticalAcrossThreadCounts) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.05);
  ThreadPool::set_default_thread_count(1);
  const auto db = sim::simulate(config);
  const analysis::AnalysisPipeline reference(db);
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_default_thread_count(threads);
    const analysis::AnalysisPipeline pipeline(db);
    ASSERT_EQ(reference.failures().size(), pipeline.failures().size());
    ASSERT_EQ(reference.classification().predicted,
              pipeline.classification().predicted);
    ASSERT_EQ(reference.classification().clustering.inertia,
              pipeline.classification().clustering.inertia);
  }
}

TEST_F(ParallelDeterminism, KMeansIdenticalAcrossThreadCounts) {
  std::vector<std::vector<double>> points;
  Rng data_rng(42);
  for (int i = 0; i < 300; ++i) {
    points.push_back({data_rng.uniform(), data_rng.uniform() + (i % 3)});
  }
  stats::KMeansOptions options;
  options.k = 3;
  options.restarts = 8;
  ThreadPool::set_default_thread_count(1);
  Rng r1(7);
  const auto reference = stats::kmeans(points, options, r1);
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_default_thread_count(threads);
    Rng r2(7);
    const auto run = stats::kmeans(points, options, r2);
    ASSERT_EQ(reference.assignment, run.assignment);
    ASSERT_EQ(reference.inertia, run.inertia);
    ASSERT_EQ(reference.centroids, run.centroids);
  }
}

TEST_F(ParallelDeterminism, BootstrapIdenticalAcrossThreadCounts) {
  std::vector<double> xs;
  Rng data_rng(11);
  for (int i = 0; i < 500; ++i) xs.push_back(data_rng.uniform() * 10.0);
  const auto mean = [](std::span<const double> s) {
    double total = 0.0;
    for (double x : s) total += x;
    return total / static_cast<double>(s.size());
  };
  ThreadPool::set_default_thread_count(1);
  Rng r1(3);
  const auto reference = stats::bootstrap_ci(xs, mean, r1, 200);
  for (std::size_t threads : kThreadCounts) {
    ThreadPool::set_default_thread_count(threads);
    Rng r2(3);
    const auto run = stats::bootstrap_ci(xs, mean, r2, 200);
    ASSERT_EQ(reference.lo, run.lo);
    ASSERT_EQ(reference.hi, run.hi);
  }
}

TEST(ArtifactCache, SameConfigSharesOneObject) {
  auto& cache = analysis::ArtifactCache::global();
  cache.set_enabled(true);
  cache.clear();
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.03);
  const auto a = cache.database(config);
  const auto b = cache.database(config);
  EXPECT_EQ(a.get(), b.get());
  const auto p1 = cache.pipeline(config);
  const auto p2 = cache.pipeline(config);
  EXPECT_EQ(p1.get(), p2.get());
  EXPECT_GE(cache.hits(), 2u);
}

TEST(ArtifactCache, DifferentConfigsGetDifferentObjects) {
  auto& cache = analysis::ArtifactCache::global();
  cache.set_enabled(true);
  cache.clear();
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.03);
  auto other = config;
  other.seed += 1;
  EXPECT_NE(config.fingerprint(), other.fingerprint());
  const auto a = cache.database(config);
  const auto b = cache.database(other);
  EXPECT_NE(a.get(), b.get());
}

TEST(ArtifactCache, DisabledCacheRebuilds) {
  auto& cache = analysis::ArtifactCache::global();
  cache.clear();
  cache.set_enabled(false);
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.03);
  const auto a = cache.database(config);
  const auto b = cache.database(config);
  EXPECT_NE(a.get(), b.get());
  cache.set_enabled(true);
}

TEST(ArtifactCache, CachedContextTiesDbToPipeline) {
  auto& cache = analysis::ArtifactCache::global();
  cache.set_enabled(true);
  cache.clear();
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.03);
  const auto ctx = analysis::cached_context(config);
  // The pipeline analyzes exactly the cached database object.
  EXPECT_EQ(&ctx.pipeline->db(), ctx.db.get());
}

TEST(ParallelFor, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ParallelFor, CoversEveryIndexOnce) {
  ThreadPool pool(8);
  std::vector<int> hits(10000, 0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i], 1) << "index " << i;
  }
}

}  // namespace
}  // namespace fa
