#include "src/inject/io_faults.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/metrics.h"
#include "src/trace/columnar_io.h"
#include "src/util/io.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace fa::inject {
namespace {

// In-memory WritableFile so fault-injection semantics can be asserted
// byte-for-byte without touching the filesystem.
class MemoryFile : public io::WritableFile {
 public:
  std::size_t write_some(const void* src, std::size_t n) override {
    const auto* p = static_cast<const std::byte*>(src);
    bytes_.insert(bytes_.end(), p, p + n);
    return n;
  }
  void flush() override { ++flushes_; }
  void close() override { closed_ = true; }
  const std::string& path() const override { return path_; }

  const std::vector<std::byte>& bytes() const { return bytes_; }
  bool closed() const { return closed_; }

 private:
  std::string path_ = "<memory>";
  std::vector<std::byte> bytes_;
  int flushes_ = 0;
  bool closed_ = false;
};

// Fails the first `failures` writes (transient or permanent), then behaves
// like a MemoryFile — direct control over the retry loop under test.
class FlakyFile : public io::WritableFile {
 public:
  FlakyFile(int failures, bool transient)
      : failures_(failures), transient_(transient) {}

  std::size_t write_some(const void* src, std::size_t n) override {
    if (failures_ > 0) {
      --failures_;
      throw io::IoError(path_, bytes_.size(), "injected flaky error",
                        transient_);
    }
    const auto* p = static_cast<const std::byte*>(src);
    bytes_.insert(bytes_.end(), p, p + n);
    return n;
  }
  void close() override {}
  const std::string& path() const override { return path_; }

  const std::vector<std::byte>& bytes() const { return bytes_; }

 private:
  std::string path_ = "<flaky>";
  int failures_;
  bool transient_;
  std::vector<std::byte> bytes_;
};

std::vector<std::byte> pattern_bytes(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>(1 + (i % 251));  // never zero
  }
  return out;
}

// ---- RetryPolicy / CheckedWriter (satellite: retry + backoff) ----

TEST(RetryPolicyTest, BackoffScheduleIsBoundedExponential) {
  const io::RetryPolicy policy;  // 1ms, x2, capped at 50ms
  EXPECT_DOUBLE_EQ(policy.backoff_for(0), 0.001);
  EXPECT_DOUBLE_EQ(policy.backoff_for(1), 0.002);
  EXPECT_DOUBLE_EQ(policy.backoff_for(2), 0.004);
  EXPECT_DOUBLE_EQ(policy.backoff_for(5), 0.032);
  EXPECT_DOUBLE_EQ(policy.backoff_for(6), 0.050);   // capped
  EXPECT_DOUBLE_EQ(policy.backoff_for(20), 0.050);  // stays capped
}

TEST(RetryPolicyTest, TransientErrorsAreRetriedOnTheBackoffSchedule) {
  auto file = std::make_unique<FlakyFile>(2, /*transient=*/true);
  const FlakyFile* raw = file.get();
  io::VirtualClock clock;
  io::RetryPolicy policy;
  io::CheckedWriter writer(std::move(file), policy, &clock);

  const std::vector<std::byte> payload = pattern_bytes(64);
  writer.write(payload.data(), payload.size());

  EXPECT_EQ(raw->bytes(), payload);
  // Two transient failures -> two backoff sleeps, in schedule order.
  ASSERT_EQ(clock.slept().size(), 2u);
  EXPECT_DOUBLE_EQ(clock.slept()[0], policy.backoff_for(0));
  EXPECT_DOUBLE_EQ(clock.slept()[1], policy.backoff_for(1));
  EXPECT_DOUBLE_EQ(clock.total(), 0.003);
}

TEST(RetryPolicyTest, ExhaustionRethrowsAsPermanentWithAttemptCount) {
  const std::uint64_t gave_up_before = obs::counter("fa.io.gave_up").value();
  io::VirtualClock clock;
  io::RetryPolicy policy;
  policy.max_attempts = 4;
  io::CheckedWriter writer(
      std::make_unique<FlakyFile>(100, /*transient=*/true), policy, &clock);

  const std::vector<std::byte> payload = pattern_bytes(16);
  try {
    writer.write(payload.data(), payload.size());
    FAIL() << "expected IoError";
  } catch (const io::IoError& e) {
    EXPECT_FALSE(e.transient()) << "escaped errors must be settled";
    EXPECT_NE(std::string(e.what()).find("gave up after 4 attempts"),
              std::string::npos)
        << e.what();
  }
  // max_attempts = 4 -> 3 retries -> 3 sleeps; the 4th failure gives up.
  ASSERT_EQ(clock.slept().size(), 3u);
  EXPECT_DOUBLE_EQ(clock.slept()[0], policy.backoff_for(0));
  EXPECT_DOUBLE_EQ(clock.slept()[1], policy.backoff_for(1));
  EXPECT_DOUBLE_EQ(clock.slept()[2], policy.backoff_for(2));
  if (obs::kCompiledIn) {
    EXPECT_EQ(obs::counter("fa.io.gave_up").value(), gave_up_before + 1);
  }
}

TEST(RetryPolicyTest, PermanentErrorsAreNotRetried) {
  io::VirtualClock clock;
  io::CheckedWriter writer(
      std::make_unique<FlakyFile>(1, /*transient=*/false), {}, &clock);
  const std::vector<std::byte> payload = pattern_bytes(16);
  EXPECT_THROW(writer.write(payload.data(), payload.size()), io::IoError);
  EXPECT_TRUE(clock.slept().empty()) << "permanent errors must fail fast";
}

// ---- FaultyFile write-side faults ----

TEST(FaultyFileTest, ShortWritesLoopToCompletion) {
  IoFaultConfig config;
  config.seed = 7;
  config.short_write_rate = 1.0;  // every multi-byte write comes up short
  IoFaultLog log;
  auto memory = std::make_unique<MemoryFile>();
  const MemoryFile* raw = memory.get();
  io::CheckedWriter writer(
      std::make_unique<FaultyFile>(std::move(memory), config, &log));

  const std::vector<std::byte> payload = pattern_bytes(4096);
  writer.write(payload.data(), payload.size());
  writer.flush();
  writer.close();

  EXPECT_EQ(raw->bytes(), payload) << "short writes lost or reordered bytes";
  EXPECT_TRUE(raw->closed());
  EXPECT_GT(log.events.size(), 1u) << "expected several short-write events";
  for (const IoFaultEvent& e : log.events) {
    EXPECT_EQ(e.kind, IoFaultEvent::Kind::kShortWrite);
    EXPECT_GE(e.detail, 1u);
  }
}

TEST(FaultyFileTest, TransientStreakIsCappedSoRetriesEventuallyWin) {
  IoFaultConfig config;
  config.seed = 3;
  config.transient_write_rate = 1.0;  // would fail forever without the cap
  config.max_transient_streak = 2;
  IoFaultLog log;
  auto memory = std::make_unique<MemoryFile>();
  const MemoryFile* raw = memory.get();
  io::VirtualClock clock;
  io::RetryPolicy policy;  // max_attempts 4 > streak cap 2
  io::CheckedWriter writer(
      std::make_unique<FaultyFile>(std::move(memory), config, &log), policy,
      &clock);

  const std::vector<std::byte> payload = pattern_bytes(256);
  writer.write(payload.data(), payload.size());
  EXPECT_EQ(raw->bytes(), payload);
  EXPECT_EQ(clock.slept().size(), 2u) << "one backoff per transient failure";
}

TEST(FaultyFileTest, CrashAtByteLeavesTheExactPrefix) {
  constexpr std::uint64_t kCrashAt = 1000;
  IoFaultConfig config;
  config.crash_at_byte = kCrashAt;
  IoFaultLog log;
  auto memory = std::make_unique<MemoryFile>();
  const MemoryFile* raw = memory.get();
  FaultyFile file(std::move(memory), config, &log);

  const std::vector<std::byte> payload = pattern_bytes(4096);
  std::size_t written = 0;
  // Feed 300-byte slices: the fourth slice crosses the crash offset.
  try {
    while (written < payload.size()) {
      const std::size_t n = std::min<std::size_t>(300, payload.size() - written);
      written += file.write_some(payload.data() + written, n);
    }
    FAIL() << "expected InjectedCrash";
  } catch (const InjectedCrash& e) {
    EXPECT_EQ(e.offset(), kCrashAt);
    EXPECT_FALSE(e.transient()) << "a crash must not be retried away";
  }

  ASSERT_EQ(raw->bytes().size(), kCrashAt);
  EXPECT_TRUE(std::memcmp(raw->bytes().data(), payload.data(), kCrashAt) == 0)
      << "pre-crash prefix was not persisted verbatim";
  // The "process" is gone: every later operation fails too.
  EXPECT_THROW(file.write_some(payload.data(), 1), InjectedCrash);
  EXPECT_THROW(file.flush(), InjectedCrash);
  ASSERT_FALSE(log.events.empty());
  EXPECT_EQ(log.events.back().kind, IoFaultEvent::Kind::kCrash);
}

TEST(FaultyFileTest, TornWriteReportsSuccessButZeroesASubRange) {
  IoFaultConfig config;
  config.seed = 11;
  config.torn_write_rate = 1.0;
  IoFaultLog log;
  auto memory = std::make_unique<MemoryFile>();
  const MemoryFile* raw = memory.get();
  io::CheckedWriter writer(
      std::make_unique<FaultyFile>(std::move(memory), config, &log));

  const std::vector<std::byte> payload = pattern_bytes(512);  // no zero bytes
  writer.write(payload.data(), payload.size());

  // The caller saw success and no bytes are missing...
  ASSERT_EQ(raw->bytes().size(), payload.size());
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].kind, IoFaultEvent::Kind::kTornWrite);
  // ...but a contiguous sub-range of `detail` bytes reached disk as zeros.
  std::size_t zeroed = 0;
  for (std::size_t i = 0; i < payload.size(); ++i) {
    if (raw->bytes()[i] == std::byte{0}) {
      ++zeroed;
      EXPECT_NE(raw->bytes()[i], payload[i]);
    } else {
      EXPECT_EQ(raw->bytes()[i], payload[i]);
    }
  }
  EXPECT_EQ(zeroed, log.events[0].detail);
  EXPECT_GE(zeroed, 1u);
}

// ---- FaultyReadFile read-side faults ----

TEST(FaultyReadFileTest, BitFlipsSpareSmallReadsAndCorruptLargeOnes) {
  // Back the reader with a real temp file.
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("fa_io_faults_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const std::vector<std::byte> payload = pattern_bytes(4096);
  {
    io::CheckedWriter out(std::make_unique<io::PosixWritableFile>(path));
    out.write(payload.data(), payload.size());
    out.close();
  }

  IoFaultConfig config;
  config.seed = 5;
  config.bit_flip_rate = 1.0;
  config.bit_flip_min_read = 64;
  IoFaultLog log;
  FaultyReadFile file(std::make_unique<io::PosixReadableFile>(path), config,
                      &log);

  // Small read (below bit_flip_min_read): returned verbatim.
  std::array<std::byte, 16> small{};
  ASSERT_EQ(file.read_some(0, small.data(), small.size()), small.size());
  EXPECT_TRUE(std::memcmp(small.data(), payload.data(), small.size()) == 0);
  EXPECT_TRUE(log.events.empty());

  // Large read: exactly one bit differs; the file itself is untouched.
  std::vector<std::byte> large(1024);
  ASSERT_EQ(file.read_some(0, large.data(), large.size()), large.size());
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].kind, IoFaultEvent::Kind::kBitFlip);
  std::size_t bits_differing = 0;
  for (std::size_t i = 0; i < large.size(); ++i) {
    std::uint8_t diff = static_cast<std::uint8_t>(large[i]) ^
                        static_cast<std::uint8_t>(payload[i]);
    while (diff != 0) {
      bits_differing += diff & 1u;
      diff >>= 1u;
    }
  }
  EXPECT_EQ(bits_differing, 1u);

  std::vector<std::byte> reread(1024);
  io::CheckedReader clean(std::make_unique<io::PosixReadableFile>(path));
  clean.read_at(0, reread.data(), reread.size());
  EXPECT_TRUE(std::memcmp(reread.data(), payload.data(), reread.size()) == 0)
      << "bit flip must corrupt the returned buffer, not the file";
  std::filesystem::remove(path);
}

TEST(FaultyReadFileTest, TransientReadErrorsRespectTheStreakCap) {
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("fa_io_faults_r_" + std::to_string(::getpid()) + ".bin"))
          .string();
  const std::vector<std::byte> payload = pattern_bytes(256);
  {
    io::CheckedWriter out(std::make_unique<io::PosixWritableFile>(path));
    out.write(payload.data(), payload.size());
    out.close();
  }

  IoFaultConfig config;
  config.seed = 9;
  config.transient_read_rate = 1.0;
  config.max_transient_streak = 2;
  io::VirtualClock clock;
  io::CheckedReader reader(
      std::make_unique<FaultyReadFile>(
          std::make_unique<io::PosixReadableFile>(path), config),
      io::RetryPolicy{}, &clock);

  std::vector<std::byte> got(payload.size());
  reader.read_at(0, got.data(), got.size());
  EXPECT_EQ(got, payload);
  EXPECT_EQ(clock.slept().size(), 2u);
  std::filesystem::remove(path);
}

// ---- determinism (acceptance: schedules bit-identical at any --threads) ----

// The fault schedule is a pure function of (seed, op index), so streaming
// the same database through the injector at 1 and 8 worker threads must
// produce byte-identical fault logs and byte-identical files.
TEST(IoFaultDeterminismTest, FaultScheduleIsThreadCountInvariant) {
  const trace::TraceDatabase& db = fa::testing::small_simulated_db();

  const auto run = [&](std::size_t threads) {
    ThreadPool::set_default_thread_count(threads);
    IoFaultConfig config;
    config.seed = 42;
    config.short_write_rate = 0.2;
    config.torn_write_rate = 0.05;
    IoFaultLog log;
    auto memory = std::make_unique<MemoryFile>();
    const MemoryFile* raw = memory.get();
    trace::WriterOptions options;
    options.chunk_rows = 512;
    trace::ColumnarWriter writer(
        std::make_unique<FaultyFile>(std::move(memory), config, &log),
        options);
    write_columnar(db, writer);
    writer.finish();
    ThreadPool::set_default_thread_count(0);
    return std::pair<std::string, std::vector<std::byte>>(log.to_csv(),
                                                          raw->bytes());
  };

  const auto [csv1, bytes1] = run(1);
  const auto [csv8, bytes8] = run(8);
  EXPECT_GT(csv1.size(), std::string("op,kind,offset,detail\n").size())
      << "expected a non-empty fault schedule";
  EXPECT_EQ(csv1, csv8) << "fault schedule depends on thread count";
  EXPECT_EQ(bytes1, bytes8) << "faulted output depends on thread count";
}

}  // namespace
}  // namespace fa::inject
