#include "src/analysis/interfailure.h"

#include <gtest/gtest.h>

#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(InterFailure, PerServerGapsExact) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  b.add_crash(pm1, 10.0, 1.0);
  b.add_crash(pm1, 13.0, 1.0);   // gap 3 days
  b.add_crash(pm1, 20.0, 1.0);   // gap 7 days
  b.add_crash(pm2, 50.0, 1.0);   // single failure: no gap
  const auto db = b.finish();
  const auto failures = db.crash_tickets();

  const auto gaps = per_server_interfailure_days(db, failures, {});
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 3.0);
  EXPECT_DOUBLE_EQ(gaps[1], 7.0);
}

TEST(InterFailure, UnsortedInsertionHandled) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 30.0, 1.0);
  b.add_crash(pm, 10.0, 1.0);  // inserted out of order
  const auto db = b.finish();
  const auto gaps = per_server_interfailure_days(db, db.crash_tickets(), {});
  ASSERT_EQ(gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(gaps[0], 20.0);
}

TEST(InterFailure, ClassFilteredPerServerView) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 1.0, 1.0, trace::FailureClass::kSoftware);
  b.add_crash(pm, 2.0, 1.0, trace::FailureClass::kHardware);
  b.add_crash(pm, 4.0, 1.0, trace::FailureClass::kSoftware);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();
  const ClassLookup truth = [](const trace::Ticket& t) {
    return t.true_class;
  };

  const auto sw_gaps = per_server_interfailure_days(
      db, failures, {}, trace::FailureClass::kSoftware, truth);
  ASSERT_EQ(sw_gaps.size(), 1u);
  EXPECT_DOUBLE_EQ(sw_gaps[0], 3.0);

  const auto hw_gaps = per_server_interfailure_days(
      db, failures, {}, trace::FailureClass::kHardware, truth);
  EXPECT_TRUE(hw_gaps.empty());
}

TEST(InterFailure, OperatorViewPoolsAcrossServers) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(1);
  b.add_crash(pm1, 1.0, 1.0, trace::FailureClass::kPower);
  b.add_crash(pm2, 2.5, 1.0, trace::FailureClass::kPower);
  b.add_crash(pm1, 6.0, 1.0, trace::FailureClass::kPower);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();
  const ClassLookup truth = [](const trace::Ticket& t) {
    return t.true_class;
  };

  const auto gaps =
      operator_interfailure_days(failures, trace::FailureClass::kPower, truth);
  ASSERT_EQ(gaps.size(), 2u);
  EXPECT_DOUBLE_EQ(gaps[0], 1.5);
  EXPECT_DOUBLE_EQ(gaps[1], 3.5);
}

TEST(InterFailure, OperatorViewShorterThanServerView) {
  // With many servers, operator-view gaps must be much shorter (Table III).
  const auto& db = fa::testing::small_simulated_db();
  const auto failures = db.crash_tickets();
  const ClassLookup truth = [](const trace::Ticket& t) {
    return t.true_class;
  };
  const auto op = operator_interfailure_days(
      failures, trace::FailureClass::kSoftware, truth);
  const auto server = per_server_interfailure_days(
      db, failures, {}, trace::FailureClass::kSoftware, truth);
  ASSERT_FALSE(op.empty());
  ASSERT_FALSE(server.empty());
  double op_mean = 0.0, server_mean = 0.0;
  for (double g : op) op_mean += g;
  for (double g : server) server_mean += g;
  op_mean /= static_cast<double>(op.size());
  server_mean /= static_cast<double>(server.size());
  EXPECT_LT(op_mean, server_mean);
}

TEST(InterFailure, CensusCountsSingleFailureServers) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  b.add_pm(0);  // never fails
  b.add_crash(pm1, 1.0, 1.0);
  b.add_crash(pm1, 2.0, 1.0);
  b.add_crash(pm2, 3.0, 1.0);
  const auto db = b.finish();
  const auto census = failure_census(db, db.crash_tickets(), {});
  EXPECT_EQ(census.servers, 3u);
  EXPECT_EQ(census.failing_servers, 2u);
  EXPECT_EQ(census.single_failure_servers, 1u);
}

}  // namespace
}  // namespace fa::analysis
