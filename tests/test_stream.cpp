#include "src/sim/stream.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "src/analysis/out_of_core.h"
#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::sim {
namespace {

// Records the full delivery sequence for assertions.
class RecordingSink final : public trace::StreamSink {
 public:
  void begin(const trace::StreamMeta& meta) override {
    EXPECT_FALSE(begun);
    begun = true;
    this->meta = meta;
  }
  void on_event(const trace::StreamEvent& event) override {
    EXPECT_TRUE(begun);
    EXPECT_FALSE(finished);
    events.push_back(event);
  }
  void finish(TimePoint end) override {
    EXPECT_TRUE(begun);
    EXPECT_FALSE(finished);
    finished = true;
    stream_end = end;
  }

  bool begun = false;
  bool finished = false;
  TimePoint stream_end = 0;
  trace::StreamMeta meta;
  std::vector<trace::StreamEvent> events;
};

StreamScenario shift_at_day(double day, double factor) {
  StreamScenario scenario;
  scenario.shifts.push_back({ticket_window().begin + from_days(day), factor});
  return scenario;
}

TEST(StreamScenario, ChangePointsSkipNoOpShifts) {
  const ObservationWindow w = ticket_window();
  StreamScenario scenario;
  scenario.shifts.push_back({w.begin + from_days(30), 1.0});   // no-op
  scenario.shifts.push_back({w.begin + from_days(90), 4.0});   // change
  scenario.shifts.push_back({w.begin + from_days(180), 4.0});  // no-op
  scenario.shifts.push_back({w.begin + from_days(270), 1.0});  // change back
  const auto points = scenario.change_points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0], w.begin + from_days(90));
  EXPECT_EQ(points[1], w.begin + from_days(270));
}

TEST(WarpTime, IdentityWithoutShiftsOrOutsideWindow) {
  const ObservationWindow w = ticket_window();
  const StreamScenario stationary;
  EXPECT_EQ(warp_time(stationary, w, w.begin + from_days(100)),
            w.begin + from_days(100));
  const StreamScenario shifted = shift_at_day(180, 4.0);
  EXPECT_EQ(warp_time(shifted, w, w.begin - 1), w.begin - 1);
  EXPECT_EQ(warp_time(shifted, w, w.end + 5), w.end + 5);
}

TEST(WarpTime, MonotoneAndMeasurePreserving) {
  const ObservationWindow w = ticket_window();
  const StreamScenario scenario = shift_at_day(180, 4.0);
  // Intensity 1 on the first 180 days, 4 on the remaining 185: total mass
  // 180 + 4*185 = 920 "unit days". The warped image of original fraction u
  // is where the normalized intensity integral reaches u, so the original
  // point at u = 180/920 lands exactly on the shift instant.
  const double u_break = 180.0 / 920.0;
  const TimePoint t_break =
      w.begin + static_cast<TimePoint>(u_break * static_cast<double>(w.length()));
  const TimePoint shift_at = w.begin + from_days(180);
  EXPECT_NEAR(static_cast<double>(warp_time(scenario, w, t_break)),
              static_cast<double>(shift_at), static_cast<double>(from_days(1)));

  TimePoint prev = w.begin;
  for (int day = 0; day <= 364; ++day) {
    const TimePoint t = warp_time(scenario, w, w.begin + from_days(day));
    EXPECT_GE(t, prev);
    EXPECT_GE(t, w.begin);
    EXPECT_LT(t, w.end);
    prev = t;
  }
}

TEST(EmitStream, OrderedCompleteAndMetaPopulated) {
  const auto& db = fa::testing::small_simulated_db();
  RecordingSink sink;
  emit_stream(db, {}, sink);

  EXPECT_TRUE(sink.finished);
  EXPECT_EQ(sink.stream_end, db.window().end);
  EXPECT_EQ(sink.meta.server_count, db.servers().size());
  std::size_t type_total = 0, sys_total = 0;
  for (std::size_t n : sink.meta.servers_by_type) type_total += n;
  for (std::size_t n : sink.meta.servers_by_subsystem) sys_total += n;
  EXPECT_EQ(type_total, db.servers().size());
  EXPECT_EQ(sys_total, db.servers().size());

  std::size_t tickets = 0, usage = 0;
  TimePoint prev = sink.meta.window.begin;
  for (const trace::StreamEvent& e : sink.events) {
    EXPECT_GE(e.at, prev) << "stream must be timestamp-ordered";
    prev = e.at;
    if (e.kind == trace::StreamEventKind::kTicket) {
      ++tickets;
    } else {
      ++usage;
    }
  }
  EXPECT_EQ(tickets, db.tickets().size());
  // A weekly average becomes available at the end of its week; a week that
  // ends at (or past) the stream end is never delivered, everything earlier
  // arrives exactly once.
  const ObservationWindow& w = db.window();
  std::size_t available = 0;
  for (const trace::ServerRecord& s : db.servers()) {
    for (const trace::WeeklyUsage& u : db.weekly_usage_for(s.id)) {
      if (w.begin + static_cast<TimePoint>(u.week + 1) * kMinutesPerWeek <
          w.end) {
        ++available;
      }
    }
  }
  EXPECT_EQ(usage, available);
}

TEST(EmitStream, StationaryReplayPreservesTimestamps) {
  const auto& db = fa::testing::small_simulated_db();
  RecordingSink sink;
  emit_stream(db, {}, sink);
  // Without a warp every ticket keeps its database opening time.
  std::map<std::int32_t, TimePoint> opened;
  for (const trace::Ticket& t : db.tickets()) opened[t.id.value] = t.opened;
  for (const trace::StreamEvent& e : sink.events) {
    if (e.kind != trace::StreamEventKind::kTicket) continue;
    EXPECT_EQ(e.at, opened.at(e.ticket.id.value));
  }
}

TEST(EmitStream, WarpShiftsRatesByTheScriptedFactor) {
  // A hand-built trace with exactly one crash per day: uniform unit
  // intensity, so the warped rate ratio is the scripted factor alone (the
  // simulated fleet has its own growth trend that would confound this).
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  for (int day = 0; day < 365; ++day) {
    b.add_crash(pm, day + 0.5, 1.0);
  }
  const auto db = b.finish();
  const StreamScenario scenario = shift_at_day(180, 4.0);
  RecordingSink sink;
  emit_stream(db, scenario, sink);

  const TimePoint shift_at = scenario.shifts[0].at;
  std::size_t tickets = 0, pre = 0, post = 0;
  for (const trace::StreamEvent& e : sink.events) {
    if (e.kind != trace::StreamEventKind::kTicket) continue;
    ++tickets;
    (e.at < shift_at ? pre : post)++;
  }
  // Measure-preserving: the warp moves events around, it never adds or
  // drops any.
  EXPECT_EQ(tickets, 365u);
  // Intensity 1 for 180 days then 4 for 185: mass 920 unit-days, so the
  // pre-shift segment holds 180/920 of the events (71-72 of 365) spread
  // over 180 days while the rest pack into 185 days — a x4 rate step.
  EXPECT_NEAR(static_cast<double>(pre), 365.0 * 180.0 / 920.0, 2.0);
  const double pre_rate = static_cast<double>(pre) / 180.0;
  const double post_rate = static_cast<double>(post) / 185.0;
  EXPECT_NEAR(post_rate / pre_rate, 4.0, 0.25);
}

TEST(EmitStream, WarpMatchesWarpTimePerTicket) {
  const auto& db = fa::testing::small_simulated_db();
  const StreamScenario scenario = shift_at_day(180, 4.0);
  std::map<std::int32_t, TimePoint> opened;
  for (const trace::Ticket& t : db.tickets()) opened[t.id.value] = t.opened;
  RecordingSink sink;
  emit_stream(db, scenario, sink);
  std::size_t tickets = 0;
  for (const trace::StreamEvent& e : sink.events) {
    if (e.kind != trace::StreamEventKind::kTicket) continue;
    ++tickets;
    ASSERT_EQ(e.at,
              warp_time(scenario, db.window(), opened.at(e.ticket.id.value)));
  }
  EXPECT_EQ(tickets, db.tickets().size());
}

TEST(EmitStream, RepairDurationsRideAlongTheWarp) {
  const auto& db = fa::testing::small_simulated_db();
  std::map<std::int32_t, Duration> repair;
  for (const trace::Ticket& t : db.tickets()) {
    repair[t.id.value] = t.repair_time();
  }
  RecordingSink sink;
  emit_stream(db, shift_at_day(180, 4.0), sink);
  for (const trace::StreamEvent& e : sink.events) {
    if (e.kind != trace::StreamEventKind::kTicket) continue;
    EXPECT_EQ(e.ticket.opened, e.at);
    EXPECT_EQ(e.ticket.repair_time(), repair.at(e.ticket.id.value));
  }
}

TEST(EmitStream, CutoffEndsTheStreamEarly) {
  const auto& db = fa::testing::small_simulated_db();
  StreamScenario scenario;
  scenario.cutoff = ticket_window().begin + from_days(100);
  RecordingSink sink;
  emit_stream(db, scenario, sink);
  EXPECT_EQ(sink.stream_end, scenario.cutoff);
  EXPECT_FALSE(sink.events.empty());
  for (const trace::StreamEvent& e : sink.events) {
    EXPECT_LT(e.at, scenario.cutoff);
  }
}

TEST(EmitStream, RejectsInvalidScenarios) {
  const auto& db = fa::testing::small_simulated_db();
  RecordingSink sink;
  StreamScenario outside;
  outside.shifts.push_back({ticket_window().end + 1, 2.0});
  EXPECT_THROW(emit_stream(db, outside, sink), Error);
  StreamScenario negative = shift_at_day(100, -1.0);
  EXPECT_THROW(emit_stream(db, negative, sink), Error);
  StreamScenario unsorted;
  unsorted.shifts.push_back({ticket_window().begin + from_days(200), 2.0});
  unsorted.shifts.push_back({ticket_window().begin + from_days(100), 3.0});
  EXPECT_THROW(emit_stream(db, unsorted, sink), Error);
  StreamScenario bad_cutoff;
  bad_cutoff.cutoff = ticket_window().end + from_days(1);
  EXPECT_THROW(emit_stream(db, bad_cutoff, sink), Error);
}

}  // namespace
}  // namespace fa::sim
