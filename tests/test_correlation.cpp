#include "src/stats/correlation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::stats {
namespace {

TEST(Correlation, PearsonPerfectLinear) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson_correlation(xs, down), -1.0, 1e-12);
}

TEST(Correlation, PearsonIndependentNearZero) {
  Rng rng(1);
  std::vector<double> xs(20000), ys(20000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = rng.normal();
  }
  EXPECT_NEAR(pearson_correlation(xs, ys), 0.0, 0.03);
}

TEST(Correlation, PearsonInvariantToAffineTransforms) {
  Rng rng(2);
  std::vector<double> xs(500), ys(500);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.normal();
    ys[i] = 0.5 * xs[i] + rng.normal();
  }
  const double base = pearson_correlation(xs, ys);
  std::vector<double> scaled = ys;
  for (double& y : scaled) y = 3.0 * y - 7.0;
  EXPECT_NEAR(pearson_correlation(xs, scaled), base, 1e-12);
}

TEST(Correlation, PearsonRejectsDegenerate) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> constant = {5, 5, 5};
  const std::vector<double> shorter = {1, 2};
  EXPECT_THROW(pearson_correlation(xs, constant), Error);
  EXPECT_THROW(pearson_correlation(xs, shorter), Error);
  EXPECT_THROW(pearson_correlation({}, {}), Error);
}

TEST(Correlation, SpearmanCapturesMonotonicNonlinear) {
  // y = exp(x) is monotone: Spearman must be 1 even though Pearson is not.
  std::vector<double> xs, ys;
  for (int i = 0; i < 30; ++i) {
    xs.push_back(i);
    ys.push_back(std::exp(0.5 * i));
  }
  EXPECT_NEAR(spearman_correlation(xs, ys), 1.0, 1e-12);
  EXPECT_LT(pearson_correlation(xs, ys), 0.95);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> xs = {1, 2, 2, 3};
  const std::vector<double> ys = {1, 5, 5, 9};
  EXPECT_NEAR(spearman_correlation(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 4.0);
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-10);
  EXPECT_NEAR(fit.intercept, -4.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Correlation, LinearFitNoisyRSquaredBelowOne) {
  Rng rng(3);
  std::vector<double> xs, ys;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(i);
    ys.push_back(0.2 * i + rng.normal(0.0, 10.0));
  }
  const auto fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.slope, 0.2, 0.05);
  EXPECT_GT(fit.r_squared, 0.3);
  EXPECT_LT(fit.r_squared, 0.99);
}

TEST(Correlation, LinearFitRejectsConstantX) {
  const std::vector<double> xs = {2, 2, 2};
  const std::vector<double> ys = {1, 2, 3};
  EXPECT_THROW(linear_fit(xs, ys), Error);
}

TEST(Correlation, MonotonicTrendExtremes) {
  EXPECT_DOUBLE_EQ(monotonic_trend(std::vector<double>{1, 2, 3, 4}), 1.0);
  EXPECT_DOUBLE_EQ(monotonic_trend(std::vector<double>{4, 3, 2, 1}), -1.0);
  EXPECT_DOUBLE_EQ(monotonic_trend(std::vector<double>{1, 1, 1}), 0.0);
}

TEST(Correlation, MonotonicTrendMixed) {
  // 1,3,2: pairs (1,3)+ (1,2)+ (3,2)- => (2-1)/3.
  EXPECT_NEAR(monotonic_trend(std::vector<double>{1, 3, 2}), 1.0 / 3.0,
              1e-12);
  EXPECT_THROW(monotonic_trend(std::vector<double>{1}), Error);
}

}  // namespace
}  // namespace fa::stats
