#include "src/analysis/burstiness.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "src/util/rng.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(Burstiness, PoissonProcessIsNearOne) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  Rng rng(3);
  // Homogeneous Poisson arrivals over the year, ~4 per day.
  double t = 0.0;
  while (true) {
    t += rng.exponential(4.0);
    if (t >= 365.0) break;
    b.add_crash(pm, t, 1.0);
  }
  const auto db = b.finish();
  const double d = dispersion_index(db, db.crash_tickets(), {},
                                    Granularity::kDaily);
  EXPECT_NEAR(d, 1.0, 0.25);
}

TEST(Burstiness, ClusteredProcessWellAboveOne) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  Rng rng(5);
  // Bursts: on 12 random days, 30 failures each; nothing otherwise.
  for (int burst = 0; burst < 12; ++burst) {
    const double day = rng.uniform(0.0, 360.0);
    for (int k = 0; k < 30; ++k) {
      b.add_crash(pm, day + rng.uniform(0.0, 0.9), 1.0);
    }
  }
  const auto db = b.finish();
  const double d = dispersion_index(db, db.crash_tickets(), {},
                                    Granularity::kDaily);
  EXPECT_GT(d, 10.0);
}

TEST(Burstiness, EmptyScopeThrows) {
  fa::testing::TinyDbBuilder b;
  b.add_pm(0);
  const auto db = b.finish();
  EXPECT_THROW(dispersion_index(db, {}, {}, Granularity::kWeekly), Error);
}

TEST(Burstiness, SimulatedTraceIsOverdispersed) {
  const auto& db = fa::testing::small_simulated_db();
  const auto failures = db.crash_tickets();
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const Scope scope{static_cast<trace::MachineType>(t), std::nullopt};
    const double d =
        dispersion_index(db, failures, scope, Granularity::kDaily);
    // Aftershocks + multi-server incidents make daily counts clearly
    // super-Poissonian.
    EXPECT_GT(d, 1.3) << "type " << t;
  }
}

}  // namespace
}  // namespace fa::analysis
