// MLE fitter round-trips over a parameter grid (sample from known
// parameters, fit, recover), plus model-selection checks.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/fitting.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::stats {
namespace {

std::vector<double> draw(const Distribution& dist, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = dist.sample(rng);
  return xs;
}

// ---- parameterized round-trip over two-parameter grids ----

struct RoundTrip {
  std::string label;
  double p1, p2;  // family-specific parameters
};

void PrintTo(const RoundTrip& r, std::ostream* os) { *os << r.label; }

class GammaRoundTrip : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(GammaRoundTrip, RecoversParameters) {
  const auto [label, shape, scale] = GetParam();
  const GammaDist truth(shape, scale);
  const auto xs = draw(truth, 50000, 7);
  const GammaDist fitted = fit_gamma(xs);
  EXPECT_NEAR(fitted.shape(), shape, 0.06 * shape);
  EXPECT_NEAR(fitted.scale(), scale, 0.08 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GammaRoundTrip,
    ::testing::Values(RoundTrip{"sub_exponential", 0.5, 30.0},
                      RoundTrip{"near_exponential", 1.1, 5.0},
                      RoundTrip{"peaked", 4.0, 2.0},
                      RoundTrip{"paper_vm_interfailure", 0.6, 62.0}),
    [](const auto& info) { return info.param.label; });

class WeibullRoundTrip : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(WeibullRoundTrip, RecoversParameters) {
  const auto [label, shape, scale] = GetParam();
  const Weibull truth(shape, scale);
  const auto xs = draw(truth, 50000, 11);
  const Weibull fitted = fit_weibull(xs);
  EXPECT_NEAR(fitted.shape(), shape, 0.05 * shape);
  EXPECT_NEAR(fitted.scale(), scale, 0.05 * scale);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WeibullRoundTrip,
    ::testing::Values(RoundTrip{"decreasing_hazard", 0.7, 20.0},
                      RoundTrip{"exponential_like", 1.0, 8.0},
                      RoundTrip{"increasing_hazard", 2.2, 50.0}),
    [](const auto& info) { return info.param.label; });

class LogNormalRoundTrip : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(LogNormalRoundTrip, RecoversParameters) {
  const auto [label, mu, sigma] = GetParam();
  const LogNormal truth(mu, sigma);
  const auto xs = draw(truth, 50000, 13);
  const LogNormal fitted = fit_lognormal(xs);
  EXPECT_NEAR(fitted.mu(), mu, 0.05 * std::fabs(mu) + 0.02);
  EXPECT_NEAR(fitted.sigma(), sigma, 0.05 * sigma);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LogNormalRoundTrip,
    ::testing::Values(RoundTrip{"narrow", 1.0, 0.4},
                      RoundTrip{"paper_hw_repair", 2.11, 2.13},
                      RoundTrip{"wide", 3.0, 1.8}),
    [](const auto& info) { return info.param.label; });

TEST(Fitting, ExponentialRecoversRate) {
  const Exponential truth(0.2);
  const auto xs = draw(truth, 50000, 17);
  EXPECT_NEAR(fit_exponential(xs).rate(), 0.2, 0.01);
}

// ---- model selection ----

TEST(Fitting, SelectsGammaForGammaData) {
  const GammaDist truth(0.6, 40.0);
  const auto xs = draw(truth, 20000, 19);
  const auto best = fit_best(xs);
  EXPECT_EQ(best.dist->name(), "gamma");
}

TEST(Fitting, SelectsLogNormalForLogNormalData) {
  const LogNormal truth(2.0, 1.5);
  const auto xs = draw(truth, 20000, 23);
  const auto best = fit_best(xs);
  EXPECT_EQ(best.dist->name(), "lognormal");
}

TEST(Fitting, SelectsWeibullForPeakedWeibullData) {
  const Weibull truth(3.0, 10.0);
  const auto xs = draw(truth, 20000, 29);
  const auto best = fit_best(xs);
  EXPECT_EQ(best.dist->name(), "weibull");
}

TEST(Fitting, CandidatesSortedByLikelihoodAndIncludeAicKs) {
  const GammaDist truth(2.0, 3.0);
  const auto xs = draw(truth, 5000, 31);
  const auto results = fit_candidates(xs);
  ASSERT_GE(results.size(), 3u);
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_GE(results[i - 1].log_likelihood, results[i].log_likelihood);
  }
  for (const auto& r : results) {
    EXPECT_GT(r.ks_statistic, 0.0);
    EXPECT_LE(r.ks_statistic, 1.0);
    EXPECT_TRUE(std::isfinite(r.aic));
  }
}

TEST(Fitting, RejectsInvalidSamples) {
  const std::vector<double> with_zero = {1.0, 0.0, 2.0};
  const std::vector<double> negative = {1.0, -2.0};
  const std::vector<double> single = {1.0};
  EXPECT_THROW(fit_gamma(with_zero), Error);
  EXPECT_THROW(fit_weibull(negative), Error);
  EXPECT_THROW(fit_lognormal(single), Error);
  EXPECT_THROW(fit_exponential(single), Error);
}

TEST(Fitting, DegenerateSampleStillFitsExponential) {
  const std::vector<double> constant(100, 5.0);
  const auto results = fit_candidates(constant);
  ASSERT_FALSE(results.empty());
  // At minimum the exponential family must be present.
  bool has_exponential = false;
  for (const auto& r : results) {
    has_exponential |= r.dist->name() == "exponential";
  }
  EXPECT_TRUE(has_exponential);
}

TEST(Fitting, FittedMeanTracksSampleMean) {
  const GammaDist truth(0.8, 50.0);
  const auto xs = draw(truth, 30000, 37);
  double sum = 0.0;
  for (double x : xs) sum += x;
  const double sample_mean = sum / static_cast<double>(xs.size());
  // Gamma MLE preserves the sample mean exactly (shape * scale = mean).
  const GammaDist fitted = fit_gamma(xs);
  EXPECT_NEAR(fitted.mean(), sample_mean, 1e-8 * sample_mean);
}

}  // namespace
}  // namespace fa::stats
