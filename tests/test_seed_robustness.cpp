// Seed-robustness suite: the paper's headline findings must hold across
// independent simulation seeds, not just the calibrated default — i.e. they
// are properties of the generative mechanisms, not artifacts of one random
// draw. Run at reduced scale with parameterized seeds.
#include <gtest/gtest.h>

#include "src/analysis/failure_rates.h"
#include "src/analysis/recurrence.h"
#include "src/analysis/spatial.h"
#include "src/sim/simulator.h"

namespace fa::sim {
namespace {

class SeedRobustness : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static const trace::TraceDatabase& db_for(std::uint64_t seed) {
    static std::map<std::uint64_t, trace::TraceDatabase> cache;
    auto it = cache.find(seed);
    if (it == cache.end()) {
      auto config = SimulationConfig::paper_defaults().scaled(0.35);
      config.seed = seed;
      it = cache.emplace(seed, simulate(config)).first;
    }
    return it->second;
  }
};

TEST_P(SeedRobustness, PmFailMoreThanVmOverall) {
  const auto& db = db_for(GetParam());
  const auto failures = db.crash_tickets();
  const auto pm = analysis::failure_rate_summary(
      db, failures, {trace::MachineType::kPhysical, std::nullopt},
      analysis::Granularity::kWeekly);
  const auto vm = analysis::failure_rate_summary(
      db, failures, {trace::MachineType::kVirtual, std::nullopt},
      analysis::Granularity::kWeekly);
  EXPECT_GT(pm.mean, vm.mean);
}

TEST_P(SeedRobustness, RecurrenceDominatesRandom) {
  const auto& db = db_for(GetParam());
  const auto failures = db.crash_tickets();
  for (int t = 0; t < trace::kMachineTypeCount; ++t) {
    const analysis::Scope scope{static_cast<trace::MachineType>(t),
                                std::nullopt};
    EXPECT_GT(analysis::recurrence_ratio(db, failures, scope), 8.0)
        << "type " << t;
  }
}

TEST_P(SeedRobustness, SingletonIncidentsDominate) {
  const auto& db = db_for(GetParam());
  const auto spatial = analysis::analyze_spatial(
      db, [](const trace::Ticket& t) { return t.true_class; });
  EXPECT_GT(spatial.all.one, 0.6);
  EXPECT_GT(spatial.all.two_or_more, 0.05);
  EXPECT_LT(spatial.all.two_or_more, 0.4);
}

TEST_P(SeedRobustness, VmSpatialDependencyExceedsPm) {
  const auto& db = db_for(GetParam());
  const auto spatial = analysis::analyze_spatial(
      db, [](const trace::Ticket& t) { return t.true_class; });
  EXPECT_GT(spatial.vm_only.dependency_fraction(),
            spatial.pm_only.dependency_fraction());
}

TEST_P(SeedRobustness, RecurrentProbabilityGrowsSublinearly) {
  const auto& db = db_for(GetParam());
  const auto failures = db.crash_tickets();
  const analysis::Scope pm{trace::MachineType::kPhysical, std::nullopt};
  const double day =
      analysis::recurrent_probability(db, failures, pm, kMinutesPerDay);
  const double week =
      analysis::recurrent_probability(db, failures, pm, kMinutesPerWeek);
  EXPECT_GT(week, day);
  EXPECT_LT(week, 5.0 * day);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustness,
                         ::testing::Values(11u, 2024u, 987654321u),
                         [](const auto& info) {
                           return "seed_" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace fa::sim
