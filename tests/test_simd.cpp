// Equivalence tests pinning the simd.h accuracy contract: every dispatched
// kernel against its scalar reference on random and adversarial inputs
// (remainder lanes, empty inputs, NaN/inf tails), bit-identical for the
// order-preserving max scan and within 1e-12 relative for the reassociating
// reductions — and independent of the worker-thread count. Also covers the
// batch log_likelihood overrides of the distribution families and the
// Amdahl serial-fraction fit.
#include "src/stats/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/exponential.h"
#include "src/stats/fitting.h"
#include "src/stats/gamma_dist.h"
#include "src/stats/lognormal.h"
#include "src/stats/pareto.h"
#include "src/stats/weibull.h"
#include "src/util/error.h"
#include "src/util/rng.h"
#include "src/util/thread_pool.h"

namespace fa::stats {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

// Sizes straddling every vector-width boundary: empty, sub-width, the
// 4-lane and 8-lane (two-accumulator) AVX2 strides and their remainders.
const std::vector<std::size_t> kSizes = {0,  1,  2,  3,  4,  5,  7, 8,
                                         9,  11, 15, 16, 17, 31, 32, 33,
                                         63, 64, 65, 1000, 1001};

// NaN-aware match at 1e-12 relative: the reassociating contract.
void expect_close(double got, double want) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got));
    return;
  }
  if (std::isinf(want)) {
    EXPECT_EQ(got, want);
    return;
  }
  EXPECT_NEAR(got, want, 1e-12 * std::max(1.0, std::abs(want)));
}

std::vector<double> random_values(std::size_t n, std::uint64_t seed,
                                  double lo = -10.0, double hi = 10.0) {
  Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.uniform(lo, hi);
  return xs;
}

// Compares every kernel's dispatched result against its scalar reference
// on one (a, b) input pair.
void check_all_kernels(const std::vector<double>& a,
                       const std::vector<double>& b) {
  namespace sd = simd;
  expect_close(sd::sum(a), sd::scalar::sum(a));
  expect_close(sd::sum_sq(a), sd::scalar::sum_sq(a));
  expect_close(sd::sum_sq_dev(a, 0.37), sd::scalar::sum_sq_dev(a, 0.37));
  expect_close(sd::dot(a, b), sd::scalar::dot(a, b));
  expect_close(sd::squared_distance(a, b),
               sd::scalar::squared_distance(a, b));
}

TEST(Simd, DispatchNameIsKnown) {
  const auto name = simd::dispatch_name();
  EXPECT_TRUE(name == "avx2" || name == "neon" || name == "scalar") << name;
}

TEST(Simd, ReductionsMatchScalarAcrossLaneBoundaries) {
  for (std::size_t n : kSizes) {
    SCOPED_TRACE(n);
    check_all_kernels(random_values(n, 11 + n), random_values(n, 23 + n));
  }
}

TEST(Simd, ReductionsMatchScalarOnIllConditionedInput) {
  // Large cancellation: values of wildly different magnitude. The contract
  // only promises agreement with the scalar reference, not with the exact
  // sum, and 1e-12 relative on max(1, |ref|) holds because both paths add
  // the same values in size-dependent but data-independent orders.
  for (std::size_t n : {16u, 33u, 1000u}) {
    SCOPED_TRACE(n);
    Rng rng(n);
    std::vector<double> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double mag = std::pow(10.0, rng.uniform(-6.0, 6.0));
      a[i] = (rng.uniform() < 0.5 ? -mag : mag);
      b[i] = rng.uniform(-1.0, 1.0);
    }
    check_all_kernels(a, b);
  }
}

TEST(Simd, EmptyInputsReduceToZero) {
  const std::vector<double> none;
  EXPECT_EQ(simd::sum(none), 0.0);
  EXPECT_EQ(simd::sum_sq(none), 0.0);
  EXPECT_EQ(simd::sum_sq_dev(none, 1.0), 0.0);
  EXPECT_EQ(simd::dot(none, none), 0.0);
  EXPECT_EQ(simd::squared_distance(none, none), 0.0);
  EXPECT_EQ(simd::sparse_dot(nullptr, nullptr, 0, nullptr), 0.0);
  EXPECT_EQ(simd::ks_max_deviation(nullptr, 0), 0.0);
}

TEST(Simd, NaNAndInfPropagateLikeScalar) {
  // A non-finite value anywhere — vector lanes, the two-accumulator stride,
  // or the scalar remainder tail — must reach the accumulator in both
  // paths. The scalar reference defines the expected result.
  for (std::size_t n : {5u, 8u, 9u, 17u, 33u}) {
    for (double poison : {kNaN, kInf, -kInf}) {
      for (std::size_t at : {std::size_t{0}, n / 2, n - 1}) {
        SCOPED_TRACE(testing::Message()
                     << "n=" << n << " at=" << at << " poison=" << poison);
        auto a = random_values(n, 7 * n + at);
        auto b = random_values(n, 13 * n + at);
        a[at] = poison;
        check_all_kernels(a, b);
      }
    }
  }
}

TEST(Simd, SparseDotMatchesScalar) {
  Rng rng(99);
  const std::size_t dim = 257;
  const auto dense = random_values(dim, 5);
  for (std::size_t nnz : kSizes) {
    if (nnz > dim) continue;
    SCOPED_TRACE(nnz);
    std::vector<double> values = random_values(nnz, 31 + nnz);
    std::vector<std::uint32_t> indices(nnz);
    for (std::size_t e = 0; e < nnz; ++e) {
      indices[e] = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(dim) - 1));
    }
    expect_close(simd::sparse_dot(values.data(), indices.data(), nnz,
                                  dense.data()),
                 simd::scalar::sparse_dot(values.data(), indices.data(), nnz,
                                          dense.data()));
  }
}

TEST(Simd, KsMaxDeviationIsBitIdenticalToScalar) {
  // Max scans do not reassociate sums, so the contract here is exact
  // equality, not a tolerance.
  for (std::size_t n : kSizes) {
    if (n == 0) continue;
    SCOPED_TRACE(n);
    Rng rng(41 + n);
    std::vector<double> f(n);
    for (double& x : f) x = rng.uniform(0.0, 1.0);
    std::sort(f.begin(), f.end());
    const double vec = simd::ks_max_deviation(f.data(), n);
    const double ref = simd::scalar::ks_max_deviation(f.data(), n);
    EXPECT_EQ(vec, ref);
  }
}

TEST(Simd, ResultsAreIndependentOfThreadCount) {
  // The kernels are pure functions of their inputs; pin that a 1-thread and
  // an 8-thread process state produce bit-identical values.
  const auto a = random_values(1001, 3);
  const auto b = random_values(1001, 4);
  const std::size_t before = ThreadPool::default_thread_count();
  ThreadPool::set_default_thread_count(1);
  const double sum1 = simd::sum(a);
  const double dot1 = simd::dot(a, b);
  const double sq1 = simd::squared_distance(a, b);
  ThreadPool::set_default_thread_count(8);
  EXPECT_EQ(simd::sum(a), sum1);
  EXPECT_EQ(simd::dot(a, b), dot1);
  EXPECT_EQ(simd::squared_distance(a, b), sq1);
  ThreadPool::set_default_thread_count(before);
}

// ---- batch log_likelihood overrides ----

// Element-wise reference: what the base-class implementation computes.
double elementwise_loglik(const Distribution& dist,
                          std::span<const double> xs) {
  double total = 0.0;
  for (double x : xs) total += dist.log_pdf(x);
  return total;
}

void check_loglik(const Distribution& dist, std::span<const double> xs,
                  double rel_tol) {
  const double batch = dist.log_likelihood(xs);
  const double ref = elementwise_loglik(dist, xs);
  if (std::isnan(ref)) {
    EXPECT_TRUE(std::isnan(batch));
  } else if (std::isinf(ref)) {
    EXPECT_EQ(batch, ref);
  } else {
    EXPECT_NEAR(batch, ref, rel_tol * std::max(1.0, std::abs(ref)));
  }
}

TEST(SimdLogLikelihood, BatchMatchesElementwiseInDomain) {
  Rng rng(8);
  for (std::size_t n : {1u, 7u, 64u, 1001u}) {
    SCOPED_TRACE(n);
    std::vector<double> xs(n);
    for (double& x : xs) x = rng.uniform(1.5, 50.0);
    // The sufficient-statistic forms reassociate sums and trade pow for
    // exp/log, so the tolerance is looser than the kernel contract but far
    // tighter than any fit decision.
    check_loglik(Exponential(0.03), xs, 1e-9);
    check_loglik(Weibull(0.8, 12.0), xs, 1e-9);
    check_loglik(GammaDist(0.6, 40.0), xs, 1e-9);
    check_loglik(LogNormal(1.2, 0.9), xs, 1e-9);
    check_loglik(Pareto(1.0, 1.7), xs, 1e-9);
  }
}

TEST(SimdLogLikelihood, OutOfDomainFallsBackToElementwise) {
  // A zero (boundary), a negative value and non-finite values must produce
  // exactly what the element-wise path produces (-inf / NaN semantics),
  // because the batch path bails out to it.
  const std::vector<std::vector<double>> adversarial = {
      {1.0, 0.0, 2.0},          // boundary: open-domain families reject 0
      {1.0, -3.0, 2.0},         // negative
      {1.0, kNaN, 2.0},         // NaN anywhere
      {1.0, kInf, 2.0},         // +inf tail
      {},                       // empty sample
  };
  for (const auto& xs : adversarial) {
    SCOPED_TRACE(testing::Message() << "size=" << xs.size());
    check_loglik(Exponential(0.03), xs, 0.0);
    check_loglik(Weibull(0.8, 12.0), xs, 0.0);
    check_loglik(GammaDist(0.6, 40.0), xs, 0.0);
    check_loglik(LogNormal(1.2, 0.9), xs, 0.0);
    check_loglik(Pareto(1.0, 1.7), xs, 0.0);
  }
}

// ---- Amdahl serial-fraction fit ----

TEST(AmdahlFit, RecoversKnownFractions) {
  const std::vector<int> threads = {1, 2, 4, 8};
  for (double s : {0.0, 0.25, 0.6, 1.0}) {
    SCOPED_TRACE(s);
    std::vector<double> times;
    for (int p : threads) {
      const double t1 = 800.0;
      times.push_back(t1 * (s + (1.0 - s) / p));
    }
    EXPECT_NEAR(amdahl_serial_fraction(threads, times), s, 1e-9);
  }
}

TEST(AmdahlFit, ClampsToUnitInterval) {
  const std::vector<int> threads = {1, 2, 4, 8};
  // Slowdowns beyond serial (oversubscription) clamp to 1 ...
  const std::vector<double> slower = {100.0, 130.0, 150.0, 190.0};
  EXPECT_EQ(amdahl_serial_fraction(threads, slower), 1.0);
  // ... and superlinear scaling clamps to 0.
  const std::vector<double> superlinear = {100.0, 40.0, 15.0, 6.0};
  EXPECT_EQ(amdahl_serial_fraction(threads, superlinear), 0.0);
}

TEST(AmdahlFit, ValidatesInput) {
  const auto fit = [](std::vector<int> threads, std::vector<double> times) {
    return amdahl_serial_fraction(threads, times);
  };
  EXPECT_THROW(fit({1}, {100.0}), Error);            // < 2 points
  EXPECT_THROW(fit({1, 2}, {100.0}), Error);         // length mismatch
  EXPECT_THROW(fit({2, 4}, {50.0, 25.0}), Error);    // no 1-thread run
  EXPECT_THROW(fit({1, 0}, {100.0, 50.0}), Error);   // thread count < 1
  EXPECT_THROW(fit({1, 2}, {100.0, -1.0}), Error);   // non-positive time
}

}  // namespace
}  // namespace fa::stats
