#include "src/analysis/failure_rates.h"

#include <gtest/gtest.h>

#include "src/util/error.h"
#include "tests/test_support.h"

namespace fa::analysis {
namespace {

TEST(FailureRates, ExactRatesOnHandBuiltTrace) {
  fa::testing::TinyDbBuilder b;
  const auto pm1 = b.add_pm(0);
  const auto pm2 = b.add_pm(0);
  b.add_pm(0);  // never fails
  b.add_vm(0);
  b.add_crash(pm1, 0.5, 1.0);   // week 0
  b.add_crash(pm1, 1.5, 1.0);   // week 0
  b.add_crash(pm2, 8.0, 1.0);   // week 1
  const auto db = b.finish();
  const auto failures = db.crash_tickets();

  const Scope pm_scope{trace::MachineType::kPhysical, std::nullopt};
  const auto series =
      failure_rate_series(db, failures, pm_scope, Granularity::kWeekly);
  ASSERT_EQ(series.size(), static_cast<std::size_t>(db.window().week_count()));
  EXPECT_DOUBLE_EQ(series[0], 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(series[1], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(series[2], 0.0);
}

TEST(FailureRates, ScopeFiltersTypeAndSubsystem) {
  fa::testing::TinyDbBuilder b;
  const auto pm_sys0 = b.add_pm(0);
  const auto vm_sys1 = b.add_vm(1);
  b.add_crash(pm_sys0, 1.0, 1.0);
  b.add_crash(vm_sys1, 1.0, 1.0);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();

  const auto vm_rates = failure_rate_series(
      db, failures, {trace::MachineType::kVirtual, std::nullopt},
      Granularity::kWeekly);
  EXPECT_DOUBLE_EQ(vm_rates[0], 1.0);  // one VM, one failure

  const auto sys0 = failure_rate_series(
      db, failures, {std::nullopt, trace::Subsystem{0}},
      Granularity::kWeekly);
  EXPECT_DOUBLE_EQ(sys0[0], 1.0);  // one server in sys 0

  const auto all = failure_rate_series(db, failures, {}, Granularity::kWeekly);
  EXPECT_DOUBLE_EQ(all[0], 1.0);  // 2 failures / 2 servers
}

TEST(FailureRates, GranularitiesHaveConsistentTotals) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 10.0, 1.0);
  b.add_crash(pm, 100.0, 1.0);
  b.add_crash(pm, 300.0, 1.0);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();
  const Scope scope{};

  for (auto g : {Granularity::kDaily, Granularity::kWeekly,
                 Granularity::kMonthly}) {
    const auto series = failure_rate_series(db, failures, scope, g);
    double total = 0.0;
    for (double r : series) total += r;
    EXPECT_DOUBLE_EQ(total, 3.0);  // one server: rates sum to failure count
  }
}

TEST(FailureRates, SummaryMatchesSeries) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_crash(pm, 0.5, 1.0);
  const auto db = b.finish();
  const auto failures = db.crash_tickets();
  const auto summary = failure_rate_summary(db, failures, {},
                                            Granularity::kWeekly);
  EXPECT_EQ(summary.count,
            static_cast<std::size_t>(db.window().week_count()));
  EXPECT_NEAR(summary.mean, 1.0 / db.window().week_count(), 1e-12);
  EXPECT_DOUBLE_EQ(summary.max, 1.0);
}

TEST(FailureRates, NonCrashTicketRejected) {
  fa::testing::TinyDbBuilder b;
  const auto pm = b.add_pm(0);
  b.add_background(pm, 1.0);
  const auto db = b.finish();
  std::vector<const trace::Ticket*> bogus = {&db.tickets()[0]};
  EXPECT_THROW(
      failure_rate_series(db, bogus, {}, Granularity::kWeekly), Error);
}

TEST(FailureRates, EmptyScopeThrows) {
  fa::testing::TinyDbBuilder b;
  b.add_pm(0);
  const auto db = b.finish();
  const Scope vm_scope{trace::MachineType::kVirtual, std::nullopt};
  EXPECT_EQ(scope_server_count(db, vm_scope), 0u);
  EXPECT_THROW(
      failure_rate_series(db, {}, vm_scope, Granularity::kWeekly), Error);
}

}  // namespace
}  // namespace fa::analysis
