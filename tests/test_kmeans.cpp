#include "src/stats/kmeans.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::stats {
namespace {

// Three well-separated 2-D blobs.
std::vector<std::vector<double>> blobs(Rng& rng, int per_cluster) {
  const std::vector<std::vector<double>> centers = {
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  std::vector<std::vector<double>> points;
  for (const auto& c : centers) {
    for (int i = 0; i < per_cluster; ++i) {
      points.push_back({c[0] + rng.normal(0.0, 0.5),
                        c[1] + rng.normal(0.0, 0.5)});
    }
  }
  return points;
}

TEST(KMeans, RecoversSeparatedClusters) {
  Rng rng(1);
  const auto points = blobs(rng, 50);
  KMeansOptions options;
  options.k = 3;
  const auto result = kmeans(points, options, rng);

  // Each ground-truth blob maps to exactly one cluster.
  std::set<int> first(result.assignment.begin(), result.assignment.begin() + 50);
  std::set<int> second(result.assignment.begin() + 50,
                       result.assignment.begin() + 100);
  std::set<int> third(result.assignment.begin() + 100,
                      result.assignment.end());
  EXPECT_EQ(first.size(), 1u);
  EXPECT_EQ(second.size(), 1u);
  EXPECT_EQ(third.size(), 1u);
  EXPECT_NE(*first.begin(), *second.begin());
  EXPECT_NE(*second.begin(), *third.begin());
  EXPECT_TRUE(result.converged);
}

TEST(KMeans, AssignmentsInRangeAndComplete) {
  Rng rng(2);
  const auto points = blobs(rng, 20);
  KMeansOptions options;
  options.k = 4;
  const auto result = kmeans(points, options, rng);
  ASSERT_EQ(result.assignment.size(), points.size());
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, options.k);
  }
  EXPECT_EQ(result.centroids.size(), 4u);
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(3);
  const auto points = blobs(rng, 40);
  KMeansOptions k2, k6;
  k2.k = 2;
  k6.k = 6;
  Rng r1(4), r2(4);
  const double inertia2 = kmeans(points, k2, r1).inertia;
  const double inertia6 = kmeans(points, k6, r2).inertia;
  EXPECT_LT(inertia6, inertia2);
}

TEST(KMeans, KEqualsNGivesZeroInertia) {
  const std::vector<std::vector<double>> points = {
      {0.0}, {5.0}, {9.0}};
  KMeansOptions options;
  options.k = 3;
  Rng rng(5);
  const auto result = kmeans(points, options, rng);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, HandlesDuplicatePoints) {
  // More clusters than distinct points: must not crash or loop forever.
  const std::vector<std::vector<double>> points = {
      {1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}};
  KMeansOptions options;
  options.k = 3;
  Rng rng(6);
  const auto result = kmeans(points, options, rng);
  ASSERT_EQ(result.assignment.size(), 4u);
  EXPECT_LE(result.inertia, 1e-9);
}

TEST(KMeans, RejectsBadArguments) {
  Rng rng(7);
  const std::vector<std::vector<double>> points = {{1.0}, {2.0}};
  KMeansOptions options;
  options.k = 3;  // more clusters than points
  EXPECT_THROW(kmeans(points, options, rng), Error);

  options.k = 0;
  EXPECT_THROW(kmeans(points, options, rng), Error);

  const std::vector<std::vector<double>> ragged = {{1.0}, {2.0, 3.0}};
  options.k = 1;
  EXPECT_THROW(kmeans(ragged, options, rng), Error);
}

TEST(KMeans, AnchorsFillingAllClustersSeedEveryCentroid) {
  // k anchors leave nothing for k-means++ to draw; seeding must use them
  // as-is (and skip its distance-initialization pass entirely).
  const std::vector<std::vector<double>> points = {
      {0.0, 0.0}, {0.5, 0.0}, {10.0, 0.0}, {10.5, 0.0}};
  KMeansOptions options;
  options.k = 2;
  options.restarts = 1;
  options.anchors = {{0.0, 0.0}, {10.0, 0.0}};
  Rng rng(10);
  const auto result = kmeans(points, options, rng);
  EXPECT_EQ(result.assignment, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_TRUE(result.converged);
}

TEST(KMeans, RestartsPickLowestInertia) {
  Rng rng(8);
  const auto points = blobs(rng, 30);
  KMeansOptions one, many;
  one.k = many.k = 3;
  one.restarts = 1;
  many.restarts = 10;
  Rng r1(9), r2(9);
  const double single = kmeans(points, one, r1).inertia;
  const double best = kmeans(points, many, r2).inertia;
  EXPECT_LE(best, single + 1e-9);
}

}  // namespace
}  // namespace fa::stats
