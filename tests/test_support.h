// Shared helpers for the test suite: a builder for small hand-crafted trace
// databases and a cached scaled-down simulation for integration tests.
#pragma once

#include <optional>
#include <string>

#include "src/sim/config.h"
#include "src/sim/simulator.h"
#include "src/trace/database.h"

namespace fa::testing {

// Builder for tiny, fully explicit trace databases used by the analysis
// unit tests (times given in days from the ticket-window start).
class TinyDbBuilder {
 public:
  TinyDbBuilder() : year_(ticket_window()) {}

  trace::ServerId add_pm(trace::Subsystem sys, int cpu = 4,
                         double memory_gb = 8.0) {
    trace::ServerRecord s;
    s.type = trace::MachineType::kPhysical;
    s.subsystem = sys;
    s.cpu_count = cpu;
    s.memory_gb = memory_gb;
    s.first_record = monitoring_window().begin;
    return db_.add_server(s);
  }

  trace::ServerId add_vm(trace::Subsystem sys, int cpu = 2,
                         double memory_gb = 2.0, double disk_gb = 128.0,
                         int disk_count = 2,
                         std::optional<double> created_days_after_db_start =
                             std::nullopt) {
    trace::ServerRecord s;
    s.type = trace::MachineType::kVirtual;
    s.subsystem = sys;
    s.cpu_count = cpu;
    s.memory_gb = memory_gb;
    s.disk_gb = disk_gb;
    s.disk_count = disk_count;
    s.host_box = trace::BoxId{0};
    s.first_record =
        monitoring_window().begin +
        (created_days_after_db_start
             ? from_days(*created_days_after_db_start)
             : 0);
    return db_.add_server(s);
  }

  // Crash ticket `days` after the ticket-window start, repaired after
  // `repair_hours`. A fresh incident is allocated unless one is passed.
  trace::TicketId add_crash(trace::ServerId server, double days,
                            double repair_hours,
                            trace::FailureClass cls =
                                trace::FailureClass::kSoftware,
                            std::optional<trace::IncidentId> incident =
                                std::nullopt,
                            const std::string& description =
                                "server unresponsive") {
    trace::Ticket t;
    t.incident = incident ? *incident : db_.new_incident();
    t.server = server;
    t.subsystem = db_.server(server).subsystem;
    t.is_crash = true;
    t.true_class = cls;
    t.opened = year_.begin + from_days(days);
    t.closed = t.opened + from_hours(repair_hours);
    t.description = description;
    t.resolution = "fixed";
    return db_.add_ticket(std::move(t));
  }

  trace::TicketId add_background(trace::ServerId server, double days) {
    trace::Ticket t;
    t.server = server;
    t.subsystem = db_.server(server).subsystem;
    t.is_crash = false;
    t.opened = year_.begin + from_days(days);
    t.closed = t.opened + from_hours(1.0);
    t.description = "cpu utilization warning";
    t.resolution = "closed after review";
    return db_.add_ticket(std::move(t));
  }

  trace::IncidentId new_incident() { return db_.new_incident(); }
  trace::TraceDatabase& raw() { return db_; }

  trace::TraceDatabase finish() {
    db_.finalize();
    return std::move(db_);
  }

 private:
  trace::TraceDatabase db_;
  ObservationWindow year_;
};

// A scaled-down full simulation, built once and shared across integration
// tests in a binary (simulation is deterministic, so sharing is safe).
inline const trace::TraceDatabase& small_simulated_db() {
  static const trace::TraceDatabase db = [] {
    auto config = sim::SimulationConfig::paper_defaults().scaled(0.15);
    return sim::simulate(config);
  }();
  return db;
}

}  // namespace fa::testing
