#include "src/stats/histogram.h"

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::stats {
namespace {

TEST(BinSpec, FromEdgesIndexing) {
  const auto spec = BinSpec::from_edges({0.0, 1.0, 4.0, 10.0});
  EXPECT_EQ(spec.bin_count(), 3u);
  EXPECT_EQ(spec.index_of(0.0), 0u);
  EXPECT_EQ(spec.index_of(0.99), 0u);
  EXPECT_EQ(spec.index_of(1.0), 1u);
  EXPECT_EQ(spec.index_of(9.999), 2u);
  EXPECT_FALSE(spec.index_of(10.0).has_value());
  EXPECT_FALSE(spec.index_of(-0.1).has_value());
}

TEST(BinSpec, RejectsMalformedEdges) {
  EXPECT_THROW(BinSpec::from_edges({1.0}), Error);
  EXPECT_THROW(BinSpec::from_edges({1.0, 1.0}), Error);
  EXPECT_THROW(BinSpec::from_edges({2.0, 1.0}), Error);
}

TEST(BinSpec, LinearConstruction) {
  const auto spec = BinSpec::linear(0.0, 100.0, 10);
  EXPECT_EQ(spec.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(spec.lower_edge(0), 0.0);
  EXPECT_DOUBLE_EQ(spec.upper_edge(9), 100.0);
  EXPECT_EQ(spec.index_of(55.0), 5u);
  EXPECT_DOUBLE_EQ(spec.center(5), 55.0);
}

TEST(BinSpec, PowerOfTwoConstruction) {
  const auto spec = BinSpec::power_of_two(1.0, 5);
  EXPECT_EQ(spec.bin_count(), 5u);
  EXPECT_EQ(spec.index_of(1.0), 0u);
  EXPECT_EQ(spec.index_of(2.0), 1u);
  EXPECT_EQ(spec.index_of(31.9), 4u);
  EXPECT_FALSE(spec.index_of(32.0).has_value());
}

TEST(BinSpec, LabelsSingleIntegerAndRange) {
  const auto spec = BinSpec::from_edges({1.0, 2.0, 4.0, 8.5});
  EXPECT_EQ(spec.label(0), "1");          // [1, 2) holds the integer 1
  EXPECT_EQ(spec.label(1), "[2, 4)");
  EXPECT_EQ(spec.label(2), "[4.00, 8.50)");
}

TEST(Histogram, CountsAndOutOfRange) {
  Histogram h(BinSpec::from_edges({0.0, 10.0, 20.0}));
  EXPECT_TRUE(h.add(5.0));
  EXPECT_TRUE(h.add(15.0));
  EXPECT_TRUE(h.add(15.5));
  EXPECT_FALSE(h.add(25.0));
  EXPECT_FALSE(h.add(-1.0));
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.out_of_range(), 2u);
  EXPECT_DOUBLE_EQ(h.fraction(1), 2.0 / 3.0);
}

TEST(Histogram, AddAllAndEmptyFractionThrows) {
  Histogram h(BinSpec::linear(0.0, 1.0, 2));
  EXPECT_THROW(h.fraction(0), Error);
  const std::vector<double> xs = {0.1, 0.6, 0.7};
  h.add_all(xs);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_DOUBLE_EQ(h.fraction(0), 1.0 / 3.0);
}

}  // namespace
}  // namespace fa::stats
