#include "src/stats/hazard_estimate.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/stats/exponential.h"
#include "src/stats/weibull.h"
#include "src/util/error.h"
#include "src/util/rng.h"

namespace fa::stats {
namespace {

std::vector<double> draw(const Distribution& d, int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (double& x : xs) x = d.sample(rng);
  return xs;
}

TEST(HazardEstimate, NelsonAalenTinyExact) {
  // Durations {1, 2, 4}: H(1)=1/3, H(2)=1/3+1/2, H(4)=1/3+1/2+1.
  const std::vector<double> xs = {4.0, 1.0, 2.0};
  const auto curve = nelson_aalen(xs);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].time, 1.0);
  EXPECT_NEAR(curve[0].cumulative_hazard, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(curve[1].cumulative_hazard, 1.0 / 3.0 + 0.5, 1e-12);
  EXPECT_NEAR(curve[2].cumulative_hazard, 1.0 / 3.0 + 0.5 + 1.0, 1e-12);
}

TEST(HazardEstimate, TiesShareAnEventTime) {
  const std::vector<double> xs = {1.0, 1.0, 3.0};
  const auto curve = nelson_aalen(xs);
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_NEAR(curve[0].cumulative_hazard, 2.0 / 3.0, 1e-12);
}

TEST(HazardEstimate, CumulativeHazardIsIncreasing) {
  Rng rng(1);
  const Weibull w(0.6, 5.0);
  const auto xs = draw(w, 2000, 3);
  const auto curve = nelson_aalen(xs);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].cumulative_hazard, curve[i - 1].cumulative_hazard);
    EXPECT_GE(curve[i].time, curve[i - 1].time);
  }
}

TEST(HazardEstimate, ExponentialHazardIsFlat) {
  const Exponential e(0.5);
  const auto xs = draw(e, 50000, 5);
  const std::vector<double> edges = {0.0, 1.0, 2.0, 3.0, 4.0};
  const auto rates = binned_hazard_rate(xs, edges);
  for (double r : rates) EXPECT_NEAR(r, 0.5, 0.05);
  EXPECT_LT(hazard_decrease_factor(xs, edges), 1.25);
}

TEST(HazardEstimate, SubExponentialWeibullHazardDecreases) {
  const Weibull w(0.5, 5.0);  // decreasing hazard
  const auto xs = draw(w, 50000, 7);
  const std::vector<double> edges = {0.0, 1.0, 5.0, 20.0};
  const auto rates = binned_hazard_rate(xs, edges);
  EXPECT_GT(rates[0], rates[1]);
  EXPECT_GT(rates[1], rates[2]);
  EXPECT_GT(hazard_decrease_factor(xs, edges), 3.0);
}

TEST(HazardEstimate, BinsBeyondDataReportZero) {
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> edges = {0.0, 5.0, 10.0};
  const auto rates = binned_hazard_rate(xs, edges);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_GT(rates[0], 0.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.0);
}

TEST(HazardEstimate, RejectsBadInput) {
  EXPECT_THROW(nelson_aalen({}), Error);
  const std::vector<double> negative = {-1.0, 2.0};
  EXPECT_THROW(nelson_aalen(negative), Error);
  const std::vector<double> xs = {1.0, 2.0};
  const std::vector<double> one_edge = {0.0};
  EXPECT_THROW(binned_hazard_rate(xs, one_edge), Error);
  const std::vector<double> bad_edges = {2.0, 1.0};
  EXPECT_THROW(binned_hazard_rate(xs, bad_edges), Error);
}

}  // namespace
}  // namespace fa::stats
