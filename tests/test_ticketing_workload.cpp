// Tests for the ticketing system and monitoring-DB content generators,
// running on a scaled-down end-to-end simulation.
#include <unordered_map>

#include <gtest/gtest.h>

#include "src/sim/simulator.h"
#include "src/stats/descriptive.h"
#include "tests/test_support.h"

namespace fa::sim {
namespace {

const trace::TraceDatabase& db() { return fa::testing::small_simulated_db(); }

const SimulationConfig& config() {
  static const SimulationConfig c =
      SimulationConfig::paper_defaults().scaled(0.15);
  return c;
}

TEST(Ticketing, TotalTicketVolumesMatchTable2Targets) {
  for (trace::Subsystem sys = 0; sys < trace::kSubsystemCount; ++sys) {
    EXPECT_EQ(db().ticket_count(sys),
              static_cast<std::size_t>(config().systems[sys].all_tickets))
        << "sys " << static_cast<int>(sys);
  }
}

TEST(Ticketing, CrashTicketCountsNearTargets) {
  std::array<std::array<int, 2>, trace::kSubsystemCount> counts{};
  for (const trace::Ticket& t : db().tickets()) {
    if (!t.is_crash) continue;
    const auto type = static_cast<std::size_t>(db().server(t.server).type);
    ++counts[t.subsystem][type];
  }
  for (int sys = 0; sys < trace::kSubsystemCount; ++sys) {
    const auto& pop = config().systems[sys];
    const int pm = counts[sys][0];
    const int vm = counts[sys][1];
    if (pop.pm_crash_tickets >= 20) {
      EXPECT_NEAR(pm, pop.pm_crash_tickets, 0.45 * pop.pm_crash_tickets)
          << "sys " << sys;
    }
    if (pop.vm_crash_tickets == 0) {
      EXPECT_EQ(vm, 0) << "sys " << sys;
    }
  }
}

TEST(Ticketing, CrashTicketsHaveIncidentsAndText) {
  for (const trace::Ticket& t : db().tickets()) {
    if (!t.is_crash) continue;
    EXPECT_TRUE(t.incident.valid());
    EXPECT_FALSE(t.description.empty());
    EXPECT_FALSE(t.resolution.empty());
    EXPECT_GT(t.closed, t.opened);
  }
}

TEST(Ticketing, BackgroundTicketsHaveNoIncident) {
  std::size_t background = 0;
  for (const trace::Ticket& t : db().tickets()) {
    if (t.is_crash) continue;
    ++background;
    EXPECT_FALSE(t.incident.valid());
    EXPECT_EQ(t.true_class, trace::FailureClass::kOther);
  }
  EXPECT_GT(background, db().tickets().size() / 2);
}

TEST(Ticketing, RepairMediansFollowClassSpecs) {
  std::unordered_map<int, std::vector<double>> hours_by_class;
  for (const trace::Ticket& t : db().tickets()) {
    if (!t.is_crash) continue;
    hours_by_class[static_cast<int>(t.true_class)].push_back(
        to_hours(t.repair_time()));
  }
  for (const auto& [cls, hours] : hours_by_class) {
    if (hours.size() < 50) continue;
    // Tickets recorded as "other" draw repair times from their underlying
    // cause, so their marginal is a mixture with no single target median.
    if (cls == static_cast<int>(trace::FailureClass::kOther)) continue;
    const double median = stats::median(hours);
    const double target = config().repair[static_cast<std::size_t>(cls)]
                              .median_hours;
    EXPECT_NEAR(median, target, 0.5 * target + 0.5)
        << "class " << cls << " n=" << hours.size();
  }
}

TEST(Workload, WeeklyUsagePresentForEveryExposedServerWeek) {
  const int weeks = db().window().week_count();
  for (const trace::ServerRecord& s : db().servers()) {
    const auto usage = db().weekly_usage_for(s.id);
    if (s.type == trace::MachineType::kPhysical) {
      EXPECT_EQ(usage.size(), static_cast<std::size_t>(weeks));
    } else {
      EXPECT_LE(usage.size(), static_cast<std::size_t>(weeks));
      EXPECT_FALSE(usage.empty() && s.first_record < db().window().begin);
    }
  }
}

TEST(Workload, UsageValuesWithinBounds) {
  for (const trace::ServerRecord& s : db().servers()) {
    for (const trace::WeeklyUsage& u : db().weekly_usage_for(s.id)) {
      EXPECT_GT(u.cpu_util, 0.0);
      EXPECT_LE(u.cpu_util, 100.0);
      EXPECT_GT(u.mem_util, 0.0);
      EXPECT_LE(u.mem_util, 100.0);
      if (s.type == trace::MachineType::kPhysical) {
        EXPECT_FALSE(u.disk_util.has_value());
        EXPECT_FALSE(u.net_kbps.has_value());
      } else {
        ASSERT_TRUE(u.disk_util.has_value());
        ASSERT_TRUE(u.net_kbps.has_value());
        EXPECT_GT(*u.net_kbps, 0.0);
      }
    }
  }
}

TEST(Workload, SnapshotsOnlyForVms) {
  for (const trace::ServerRecord& s : db().servers()) {
    const auto snaps = db().snapshots_for(s.id);
    if (s.type == trace::MachineType::kPhysical) {
      EXPECT_TRUE(snaps.empty());
    } else {
      for (const trace::MonthlySnapshot& snap : snaps) {
        EXPECT_GE(snap.consolidation, 1);
        EXPECT_LE(snap.consolidation, 32);
        EXPECT_EQ(snap.box, s.host_box);
      }
    }
  }
}

TEST(Workload, PowerEventsOnlyInsideOnOffWindowAndAlternating) {
  const auto window = onoff_window();
  for (const trace::ServerRecord& s : db().servers()) {
    const auto events = db().power_events_for(s.id);
    if (s.type == trace::MachineType::kPhysical) {
      EXPECT_TRUE(events.empty());
      continue;
    }
    bool expect_off = true;  // first event of a cycle is the off transition
    for (const trace::PowerEvent& e : events) {
      EXPECT_TRUE(window.contains(e.at));
      EXPECT_EQ(e.powered_on, !expect_off);
      expect_off = !expect_off;
    }
    EXPECT_TRUE(expect_off);  // cycles are complete off/on pairs
  }
}

TEST(Workload, OnOffPopulationSharesRoughlyMatchConfig) {
  // VMs configured to never cycle should have no events.
  std::size_t vms = 0, with_events = 0;
  for (const trace::ServerRecord& s : db().servers()) {
    if (s.type != trace::MachineType::kVirtual) continue;
    ++vms;
    with_events += !db().power_events_for(s.id).empty();
  }
  // 70% of VMs have a positive on/off rate; Poisson leaves some at zero.
  const double share = static_cast<double>(with_events) / vms;
  EXPECT_GT(share, 0.35);
  EXPECT_LT(share, 0.75);
}

}  // namespace
}  // namespace fa::sim
