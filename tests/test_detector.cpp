#include "src/detect/detector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/analysis/out_of_core.h"
#include "src/sim/simulator.h"
#include "src/sim/stream.h"
#include "src/util/error.h"
#include "src/util/thread_pool.h"
#include "tests/test_support.h"

namespace fa::detect {
namespace {

// A small hand-built fleet header for driving the detector directly.
trace::StreamMeta tiny_meta() {
  trace::StreamMeta meta;
  meta.window = ticket_window();
  meta.server_count = 10;
  meta.servers_by_type = {5, 5};
  meta.servers_by_subsystem = {2, 2, 2, 2, 2};
  return meta;
}

trace::StreamEvent crash_event(std::int32_t ticket_id, std::int32_t incident,
                               std::int32_t server, double day) {
  trace::StreamEvent e;
  e.kind = trace::StreamEventKind::kTicket;
  e.at = ticket_window().begin + from_days(day);
  e.machine_type = trace::MachineType::kPhysical;
  e.ticket.id = trace::TicketId{ticket_id};
  e.ticket.incident = trace::IncidentId{incident};
  e.ticket.server = trace::ServerId{server};
  e.ticket.subsystem = 0;
  e.ticket.is_crash = true;
  e.ticket.true_class = trace::FailureClass::kSoftware;
  e.ticket.opened = e.at;
  e.ticket.closed = e.at + from_hours(2.0);
  return e;
}

// Usage rows the emitter actually delivers: a weekly average becomes
// available at the end of its week, and a week ending at (or past) the
// stream end never streams.
struct DeliveredUsage {
  std::uint64_t rows = 0;
  double cpu_sum = 0.0;
  double mem_sum = 0.0;
};

DeliveredUsage delivered_usage(const trace::TraceDatabase& db) {
  DeliveredUsage d;
  const ObservationWindow& w = db.window();
  for (const trace::ServerRecord& s : db.servers()) {
    for (const trace::WeeklyUsage& u : db.weekly_usage_for(s.id)) {
      if (w.begin + static_cast<TimePoint>(u.week + 1) * kMinutesPerWeek >=
          w.end) {
        continue;
      }
      ++d.rows;
      d.cpu_sum += u.cpu_util;
      d.mem_sum += u.mem_util;
    }
  }
  return d;
}

const StratumStats& stratum(const DetectorReport& report,
                            const std::string& name) {
  for (const StratumStats& s : report.strata) {
    if (s.name == name) return s;
  }
  throw Error("missing stratum " + name);
}

TEST(OnlineDetector, ValidatesOptions) {
  DetectorOptions bad;
  bad.window = 0;
  EXPECT_THROW(OnlineDetector{bad}, Error);
  bad = {};
  bad.warmup = bad.tick - 1;
  EXPECT_THROW(OnlineDetector{bad}, Error);
  bad = {};
  bad.cusum_ratio = 1.0;
  EXPECT_THROW(OnlineDetector{bad}, Error);
  bad = {};
  bad.out_of_order = OutOfOrderPolicy::kBuffer;
  bad.reorder_slack = 0;
  EXPECT_THROW(OnlineDetector{bad}, Error);
}

TEST(OnlineDetector, EmptyStreamReportsCleanly) {
  OnlineDetector detector;
  detector.begin(tiny_meta());
  detector.finish(ticket_window().end);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.events, 0u);
  EXPECT_EQ(report.crash_tickets, 0u);
  EXPECT_TRUE(report.alerts.empty());
  EXPECT_DOUBLE_EQ(report.recurrence_fraction(), 0.0);
  EXPECT_EQ(stratum(report, "all").crashes, 0u);
  EXPECT_DOUBLE_EQ(stratum(report, "all").cumulative_weekly_rate, 0.0);
  for (const UsageStats& u : report.usage) EXPECT_EQ(u.samples, 0u);
}

TEST(OnlineDetector, SingleEventStream) {
  OnlineDetector detector;
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 3, 10.0));
  detector.finish(ticket_window().end);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.events, 1u);
  EXPECT_EQ(report.crash_tickets, 1u);
  EXPECT_EQ(stratum(report, "all").crashes, 1u);
  EXPECT_EQ(stratum(report, "sys=Sys_I").crashes, 1u);
  EXPECT_EQ(stratum(report, "type=PM").crashes, 1u);
  EXPECT_EQ(stratum(report, "class=software").crashes, 1u);
  EXPECT_TRUE(report.alerts.empty());
}

TEST(OnlineDetector, RejectPolicyThrowsOnOutOfOrder) {
  OnlineDetector detector;
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 0, 10.0));
  EXPECT_THROW(detector.on_event(crash_event(2, 2, 1, 5.0)), Error);
}

TEST(OnlineDetector, DropPolicyCountsLateEvents) {
  DetectorOptions options;
  options.out_of_order = OutOfOrderPolicy::kDrop;
  OnlineDetector detector(options);
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 0, 10.0));
  detector.on_event(crash_event(2, 2, 1, 5.0));  // behind the watermark
  detector.finish(ticket_window().end);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.late_dropped, 1u);
  EXPECT_EQ(report.crash_tickets, 1u);
}

TEST(OnlineDetector, BufferPolicyMatchesTheInOrderRun) {
  // Feed A in order; feed B swaps neighbours within the slack. The reorder
  // buffer must deliver the same sequence, so the reports must agree.
  std::vector<trace::StreamEvent> ordered;
  for (int i = 0; i < 40; ++i) {
    ordered.push_back(crash_event(i, i, i % 10, 5.0 + 2.0 * i));
  }
  std::vector<trace::StreamEvent> jittered = ordered;
  for (std::size_t i = 0; i + 1 < jittered.size(); i += 2) {
    std::swap(jittered[i], jittered[i + 1]);
  }

  OnlineDetector in_order;
  in_order.begin(tiny_meta());
  for (const auto& e : ordered) in_order.on_event(e);
  in_order.finish(ticket_window().end);

  DetectorOptions buffered_options;
  buffered_options.out_of_order = OutOfOrderPolicy::kBuffer;
  buffered_options.reorder_slack = 3 * kMinutesPerDay;
  OnlineDetector buffered(buffered_options);
  buffered.begin(tiny_meta());
  for (const auto& e : jittered) buffered.on_event(e);
  buffered.finish(ticket_window().end);

  const DetectorReport& a = in_order.report();
  const DetectorReport& b = buffered.report();
  EXPECT_GT(b.reordered_buffered, 0u);
  EXPECT_EQ(b.late_dropped, 0u);
  EXPECT_EQ(a.crash_tickets, b.crash_tickets);
  EXPECT_EQ(a.alert_log(), b.alert_log());
  EXPECT_EQ(stratum(a, "all").crashes, stratum(b, "all").crashes);
  EXPECT_DOUBLE_EQ(stratum(a, "all").mean_window_rate,
                   stratum(b, "all").mean_window_rate);
}

TEST(OnlineDetector, BufferPolicyDropsBeyondTheSlack) {
  DetectorOptions options;
  options.out_of_order = OutOfOrderPolicy::kBuffer;
  options.reorder_slack = kMinutesPerDay;
  OnlineDetector detector(options);
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 0, 10.0));
  detector.on_event(crash_event(2, 2, 1, 20.0));  // releases day 10
  detector.on_event(crash_event(3, 3, 2, 9.0));   // behind the watermark
  detector.finish(ticket_window().end);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.late_dropped, 1u);
  EXPECT_EQ(report.crash_tickets, 2u);
}

TEST(OnlineDetector, DuplicateTicketIdsDropWithinTheWindow) {
  OnlineDetector detector;
  detector.begin(tiny_meta());
  detector.on_event(crash_event(7, 1, 0, 10.0));
  auto retransmit = crash_event(7, 1, 0, 12.0);  // same id, inside window
  detector.on_event(retransmit);
  // Same id long after the window has passed: a fresh ticket again.
  detector.on_event(crash_event(7, 9, 0, 40.0));
  detector.finish(ticket_window().end);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.duplicates_dropped, 1u);
  EXPECT_EQ(report.crash_tickets, 2u);
}

TEST(OnlineDetector, RecurrenceTracksRepeatOffenders) {
  OnlineDetector detector;
  detector.begin(tiny_meta());
  detector.on_event(crash_event(1, 1, 0, 10.0));
  detector.on_event(crash_event(2, 2, 0, 13.0));  // same server, 3 days later
  detector.on_event(crash_event(3, 3, 1, 50.0));
  detector.on_event(crash_event(4, 4, 1, 80.0));  // 30 days: not recurrent
  detector.finish(ticket_window().end);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.recurrent_crashes, 1u);
  EXPECT_DOUBLE_EQ(report.recurrence_fraction(), 0.25);
}

TEST(OnlineDetector, StreamEndingMidWindowViaCutoff) {
  const auto& db = fa::testing::small_simulated_db();
  sim::StreamScenario scenario;
  scenario.cutoff = ticket_window().begin + from_days(120);
  OnlineDetector detector;
  sim::emit_stream(db, scenario, detector);
  const DetectorReport& report = detector.report();
  EXPECT_EQ(report.stream_end, scenario.cutoff);
  EXPECT_GT(report.crash_tickets, 0u);
  // Cumulative rates use the truncated stream duration, so a stationary
  // prefix still lands near the full-stream rate.
  const auto batch = analysis::summarize_database(db);
  const double full_rate =
      static_cast<double>(batch.crash_tickets) /
      (static_cast<double>(batch.servers) * ticket_window().weeks());
  const double cut_rate = stratum(report, "all").cumulative_weekly_rate;
  EXPECT_NEAR(cut_rate, full_rate, 0.35 * full_rate);
}

// ---- statistical equivalence against the batch analysis ----

TEST(OnlineDetectorEquivalence, StationaryRatesMatchBatchSummary) {
  const auto& db = fa::testing::small_simulated_db();
  OnlineDetector detector;
  sim::emit_stream(db, {}, detector);
  const DetectorReport& report = detector.report();
  const auto batch = analysis::summarize_database(db);

  // Event accounting is exact: every ticket and usage row arrives once.
  EXPECT_EQ(report.tickets, db.tickets().size());
  EXPECT_EQ(report.crash_tickets, batch.crash_tickets);
  EXPECT_EQ(report.usage_samples, delivered_usage(db).rows);
  EXPECT_EQ(report.duplicates_dropped, 0u);

  // Stratum crash counts match the batch scope tables exactly.
  EXPECT_EQ(stratum(report, "all").crashes, batch.crash_tickets);
  EXPECT_EQ(stratum(report, "all").servers, batch.servers);
  const std::size_t pm = static_cast<std::size_t>(trace::MachineType::kPhysical);
  const std::size_t vm = static_cast<std::size_t>(trace::MachineType::kVirtual);
  EXPECT_EQ(stratum(report, "type=PM").crashes, batch.by_type[pm].crash_tickets);
  EXPECT_EQ(stratum(report, "type=VM").crashes, batch.by_type[vm].crash_tickets);
  for (int sys = 0; sys < trace::kSubsystemCount; ++sys) {
    std::string name = "sys=";
    for (char c : trace::subsystem_name(static_cast<trace::Subsystem>(sys))) {
      name += c == ' ' ? '_' : c;
    }
    const std::uint64_t expected =
        batch.by_scope[pm][static_cast<std::size_t>(sys)].crash_tickets +
        batch.by_scope[vm][static_cast<std::size_t>(sys)].crash_tickets;
    EXPECT_EQ(stratum(report, name).crashes, expected) << name;
  }

  // Rates: the batch mean weekly rate buckets the window into whole weeks
  // (week_count) while the stream rate uses exact elapsed weeks — compare
  // the common numerator crashes / servers instead of the quotients.
  const auto check_rate = [&](const StratumStats& s, double batch_rate,
                              std::uint64_t servers) {
    if (servers == 0) return;
    const double stream_crashes_per_server =
        s.cumulative_weekly_rate * ticket_window().weeks();
    const double batch_crashes_per_server =
        batch_rate * static_cast<double>(ticket_window().week_count());
    EXPECT_NEAR(stream_crashes_per_server, batch_crashes_per_server,
                1e-9 + 1e-9 * batch_crashes_per_server)
        << s.name;
  };
  check_rate(stratum(report, "type=PM"),
             batch.by_type[pm].mean_weekly_failure_rate, batch.by_type[pm].servers);
  check_rate(stratum(report, "type=VM"),
             batch.by_type[vm].mean_weekly_failure_rate, batch.by_type[vm].servers);

  // On a stationary stream the time-averaged sliding-window rate converges
  // to the cumulative rate (it just weights the year uniformly window by
  // window).
  for (const char* name : {"all", "type=PM", "type=VM"}) {
    const StratumStats& s = stratum(report, name);
    ASSERT_GT(s.crashes, 50u) << name;
    EXPECT_NEAR(s.mean_window_rate, s.cumulative_weekly_rate,
                0.25 * s.cumulative_weekly_rate)
        << name;
  }
}

TEST(OnlineDetectorEquivalence, UsageMeansMatchBatchMeans) {
  const auto& db = fa::testing::small_simulated_db();
  OnlineDetector detector;
  sim::emit_stream(db, {}, detector);
  const DetectorReport& report = detector.report();

  const DeliveredUsage d = delivered_usage(db);
  ASSERT_GT(d.rows, 0u);
  ASSERT_EQ(report.usage.size(), 2u);
  const UsageStats& cpu = report.usage[0];
  const UsageStats& mem = report.usage[1];
  EXPECT_EQ(cpu.samples, d.rows);
  EXPECT_EQ(mem.samples, d.rows);
  const double cpu_mean = d.cpu_sum / static_cast<double>(d.rows);
  const double mem_mean = d.mem_sum / static_cast<double>(d.rows);
  EXPECT_NEAR(cpu.mean, cpu_mean, 1e-6);
  EXPECT_NEAR(mem.mean, mem_mean, 1e-6);
  // The EWMA tracks late-stream tick means; on a stationary replay it ends
  // within a few utilization points of the global mean (fleet composition
  // drifts slowly as machines are created through the year).
  EXPECT_NEAR(cpu.ewma, cpu_mean, 5.0);
  EXPECT_NEAR(mem.ewma, mem_mean, 5.0);
}

TEST(OnlineDetectorEquivalence, AlertLogByteIdenticalAcrossThreadCounts) {
  const auto config = sim::SimulationConfig::paper_defaults().scaled(0.3);
  sim::StreamScenario scenario;
  scenario.shifts.push_back({ticket_window().begin + from_days(180), 4.0});

  const auto run = [&](std::size_t threads) {
    ThreadPool::set_default_thread_count(threads);
    const auto db = sim::simulate(config);
    OnlineDetector detector;
    sim::emit_stream(db, scenario, detector);
    return std::pair{detector.report().alert_log(),
                     detector.report().to_string()};
  };
  const auto [log1, report1] = run(1);
  const auto [log8, report8] = run(8);
  ThreadPool::set_default_thread_count(0);
  EXPECT_FALSE(log1.empty());
  EXPECT_EQ(log1, log8);
  EXPECT_EQ(report1, report8);
}

}  // namespace
}  // namespace fa::detect
