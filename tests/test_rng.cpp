#include "src/util/rng.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(7), parent2(7);
  Rng a = parent1.fork(1);
  Rng b = parent2.fork(1);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  Rng parent3(7);
  Rng c = parent3.fork(2);
  Rng parent4(7);
  Rng d = parent4.fork(1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += c.next_u64() == d.next_u64();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::vector<int> seen(6, 0);
  for (int i = 0; i < 6000; ++i) {
    const auto v = rng.uniform_int(2, 7);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 7);
    ++seen[static_cast<std::size_t>(v - 2)];
  }
  for (int count : seen) EXPECT_GT(count, 800);  // ~1000 each
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(2.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.exponential(0.5);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(19);
  for (double mean : {0.5, 3.0, 80.0}) {
    const int n = 50000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.03) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(23);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexRejectsBadInput) {
  Rng rng(37);
  EXPECT_THROW(rng.weighted_index({}), Error);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), Error);
  EXPECT_THROW(rng.weighted_index({1.0, -1.0}), Error);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace fa
