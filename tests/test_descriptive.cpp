#include "src/stats/descriptive.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::stats {
namespace {

const std::vector<double> kSample = {4.0, 1.0, 3.0, 2.0, 5.0};

TEST(Descriptive, Mean) {
  EXPECT_DOUBLE_EQ(mean(kSample), 3.0);
  EXPECT_THROW(mean({}), Error);
}

TEST(Descriptive, VarianceIsUnbiased) {
  EXPECT_DOUBLE_EQ(variance(kSample), 2.5);  // sum sq dev 10 / (5-1)
  EXPECT_THROW(variance(std::vector<double>{1.0}), Error);
}

TEST(Descriptive, StdDev) {
  EXPECT_NEAR(stddev(kSample), std::sqrt(2.5), 1e-12);
}

TEST(Descriptive, MinMax) {
  EXPECT_DOUBLE_EQ(min(kSample), 1.0);
  EXPECT_DOUBLE_EQ(max(kSample), 5.0);
}

TEST(Descriptive, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median(kSample), 3.0);
  const std::vector<double> even = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Descriptive, PercentileInterpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Descriptive, PercentileSingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 7.0);
}

TEST(Descriptive, PercentileRejectsBadInput) {
  EXPECT_THROW(percentile({}, 50.0), Error);
  EXPECT_THROW(percentile(kSample, -1.0), Error);
  EXPECT_THROW(percentile(kSample, 101.0), Error);
}

TEST(Descriptive, CoefficientOfVariation) {
  EXPECT_NEAR(coefficient_of_variation(kSample), std::sqrt(2.5) / 3.0,
              1e-12);
}

TEST(Descriptive, SummaryAggregatesEverything) {
  const Summary s = summarize(kSample);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Descriptive, SummarySingleElementHasZeroStddev) {
  const Summary s = summarize(std::vector<double>{2.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

}  // namespace
}  // namespace fa::stats
