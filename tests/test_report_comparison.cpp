#include <gtest/gtest.h>

#include "src/analysis/report.h"
#include "src/paper/comparison.h"
#include "src/paper/reference.h"
#include "src/util/error.h"

namespace fa {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  analysis::TextTable table({"name", "value"});
  table.add_row({"pm", "0.005"});
  table.add_row({"vm_long_label", "0.003"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("vm_long_label"), std::string::npos);
  // Header separator line present.
  EXPECT_NE(out.find("|---"), std::string::npos);
  // All lines have equal width.
  std::size_t width = out.find('\n');
  for (std::size_t pos = 0; pos < out.size();) {
    const std::size_t next = out.find('\n', pos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TextTable, RejectsMismatchedRow) {
  analysis::TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), Error);
  EXPECT_THROW(analysis::TextTable({}), Error);
}

TEST(Comparison, RendersRowsAndChecks) {
  paperref::Comparison cmp("Fig. 2 -- weekly failure rates");
  cmp.add("PM all", 0.005, 0.0055, 4);
  cmp.add_text("fit family", "gamma", "gamma");
  cmp.check("PM rate exceeds VM rate", true);
  cmp.check("within 2x of paper", false);
  const std::string out = cmp.render();
  EXPECT_NE(out.find("Fig. 2"), std::string::npos);
  EXPECT_NE(out.find("0.0050"), std::string::npos);
  EXPECT_NE(out.find("[PASS]"), std::string::npos);
  EXPECT_NE(out.find("[CHECK]"), std::string::npos);
  EXPECT_FALSE(cmp.all_checks_passed());
  EXPECT_EQ(cmp.failed_checks(), 1);
}

TEST(Comparison, AllPassedVerdict) {
  paperref::Comparison cmp("t");
  cmp.check("a", true);
  EXPECT_TRUE(cmp.all_checks_passed());
  EXPECT_NE(cmp.render().find("all shape criteria reproduced"),
            std::string::npos);
}

TEST(Reference, InternalConsistency) {
  // Table II totals match the stated population sizes.
  int pms = 0, vms = 0;
  for (const auto& sys : paperref::kTable2) {
    pms += sys.pms;
    vms += sys.vms;
  }
  EXPECT_EQ(pms, paperref::kTotalPms);
  EXPECT_EQ(vms, paperref::kTotalVms);
  // Crash shares sum to 1 per system.
  for (const auto& sys : paperref::kTable2) {
    EXPECT_NEAR(sys.crash_pm_share + sys.crash_vm_share, 1.0, 1e-9);
  }
  // Repair means exceed medians (long tails) in every class.
  for (const auto& mm : paperref::kTable4) {
    EXPECT_GT(mm.mean, mm.median);
  }
  // Recurrent >> random in Table V wherever defined.
  for (const auto& row : paperref::kTable5Pm) {
    if (row.random > 0) {
      EXPECT_GT(row.recurrent / row.random, 5.0);
    }
  }
}

}  // namespace
}  // namespace fa
