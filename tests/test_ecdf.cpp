#include "src/stats/ecdf.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/util/error.h"

namespace fa::stats {
namespace {

TEST(Ecdf, StepFunctionValues) {
  const std::vector<double> xs = {3.0, 1.0, 2.0, 2.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f(0.5), 0.0);
  EXPECT_DOUBLE_EQ(f(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f(1.5), 0.25);
  EXPECT_DOUBLE_EQ(f(2.0), 0.75);  // two ties at 2.0
  EXPECT_DOUBLE_EQ(f(3.0), 1.0);
  EXPECT_DOUBLE_EQ(f(99.0), 1.0);
}

TEST(Ecdf, EmptySampleThrows) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), Error);
}

TEST(Ecdf, QuantileReturnsOrderStatistics) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  const Ecdf f(xs);
  EXPECT_DOUBLE_EQ(f.quantile(0.25), 10.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.26), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(f.quantile(1.0), 40.0);
  EXPECT_THROW(f.quantile(0.0), Error);
}

TEST(Ecdf, QuantileAndCdfAreConsistent) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const Ecdf f(xs);
  for (double p : {0.01, 0.2, 0.5, 0.77, 1.0}) {
    EXPECT_GE(f(f.quantile(p)), p);
  }
}

TEST(Ecdf, CurveIsMonotoneAndSpansRange) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(static_cast<double>(i % 37));
  const Ecdf f(xs);
  const auto pts = f.curve(50);
  ASSERT_EQ(pts.size(), 50u);
  EXPECT_DOUBLE_EQ(pts.back().p, 1.0);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].x, pts[i - 1].x);
    EXPECT_GE(pts[i].p, pts[i - 1].p);
  }
}

TEST(Ecdf, CurveSmallerSampleThanPoints) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  const Ecdf f(xs);
  const auto pts = f.curve(100);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts.front().x, 1.0);
  EXPECT_DOUBLE_EQ(pts.back().x, 5.0);
  EXPECT_DOUBLE_EQ(pts.back().p, 1.0);
}

}  // namespace
}  // namespace fa::stats
