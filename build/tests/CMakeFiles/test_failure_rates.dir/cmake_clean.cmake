file(REMOVE_RECURSE
  "CMakeFiles/test_failure_rates.dir/test_failure_rates.cpp.o"
  "CMakeFiles/test_failure_rates.dir/test_failure_rates.cpp.o.d"
  "test_failure_rates"
  "test_failure_rates.pdb"
  "test_failure_rates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_failure_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
