# Empty dependencies file for test_failure_rates.
# This may be replaced when dependencies are built.
