file(REMOVE_RECURSE
  "CMakeFiles/test_report_comparison.dir/test_report_comparison.cpp.o"
  "CMakeFiles/test_report_comparison.dir/test_report_comparison.cpp.o.d"
  "test_report_comparison"
  "test_report_comparison.pdb"
  "test_report_comparison[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
