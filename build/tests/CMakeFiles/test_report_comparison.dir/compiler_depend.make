# Empty compiler generated dependencies file for test_report_comparison.
# This may be replaced when dependencies are built.
