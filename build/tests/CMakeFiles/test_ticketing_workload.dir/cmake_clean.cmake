file(REMOVE_RECURSE
  "CMakeFiles/test_ticketing_workload.dir/test_ticketing_workload.cpp.o"
  "CMakeFiles/test_ticketing_workload.dir/test_ticketing_workload.cpp.o.d"
  "test_ticketing_workload"
  "test_ticketing_workload.pdb"
  "test_ticketing_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ticketing_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
