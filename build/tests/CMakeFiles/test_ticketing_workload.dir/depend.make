# Empty dependencies file for test_ticketing_workload.
# This may be replaced when dependencies are built.
