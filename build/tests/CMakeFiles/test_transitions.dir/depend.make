# Empty dependencies file for test_transitions.
# This may be replaced when dependencies are built.
