file(REMOVE_RECURSE
  "CMakeFiles/test_fitting.dir/test_fitting.cpp.o"
  "CMakeFiles/test_fitting.dir/test_fitting.cpp.o.d"
  "test_fitting"
  "test_fitting.pdb"
  "test_fitting[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fitting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
