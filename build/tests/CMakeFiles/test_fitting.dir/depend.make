# Empty dependencies file for test_fitting.
# This may be replaced when dependencies are built.
