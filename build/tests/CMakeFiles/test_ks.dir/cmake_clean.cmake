file(REMOVE_RECURSE
  "CMakeFiles/test_ks.dir/test_ks.cpp.o"
  "CMakeFiles/test_ks.dir/test_ks.cpp.o.d"
  "test_ks"
  "test_ks.pdb"
  "test_ks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
