# Empty compiler generated dependencies file for test_capacity_usage.
# This may be replaced when dependencies are built.
