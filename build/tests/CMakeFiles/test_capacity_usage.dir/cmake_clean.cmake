file(REMOVE_RECURSE
  "CMakeFiles/test_capacity_usage.dir/test_capacity_usage.cpp.o"
  "CMakeFiles/test_capacity_usage.dir/test_capacity_usage.cpp.o.d"
  "test_capacity_usage"
  "test_capacity_usage.pdb"
  "test_capacity_usage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_capacity_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
