# Empty dependencies file for test_repair_recurrence.
# This may be replaced when dependencies are built.
