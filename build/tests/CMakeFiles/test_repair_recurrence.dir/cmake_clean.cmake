file(REMOVE_RECURSE
  "CMakeFiles/test_repair_recurrence.dir/test_repair_recurrence.cpp.o"
  "CMakeFiles/test_repair_recurrence.dir/test_repair_recurrence.cpp.o.d"
  "test_repair_recurrence"
  "test_repair_recurrence.pdb"
  "test_repair_recurrence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_repair_recurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
