file(REMOVE_RECURSE
  "CMakeFiles/test_ticket_text.dir/test_ticket_text.cpp.o"
  "CMakeFiles/test_ticket_text.dir/test_ticket_text.cpp.o.d"
  "test_ticket_text"
  "test_ticket_text.pdb"
  "test_ticket_text[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ticket_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
