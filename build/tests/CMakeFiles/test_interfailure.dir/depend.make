# Empty dependencies file for test_interfailure.
# This may be replaced when dependencies are built.
