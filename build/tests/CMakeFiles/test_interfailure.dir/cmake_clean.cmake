file(REMOVE_RECURSE
  "CMakeFiles/test_interfailure.dir/test_interfailure.cpp.o"
  "CMakeFiles/test_interfailure.dir/test_interfailure.cpp.o.d"
  "test_interfailure"
  "test_interfailure.pdb"
  "test_interfailure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_interfailure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
