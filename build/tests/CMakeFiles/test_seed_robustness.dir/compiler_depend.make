# Empty compiler generated dependencies file for test_seed_robustness.
# This may be replaced when dependencies are built.
