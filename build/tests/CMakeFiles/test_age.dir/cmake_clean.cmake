file(REMOVE_RECURSE
  "CMakeFiles/test_age.dir/test_age.cpp.o"
  "CMakeFiles/test_age.dir/test_age.cpp.o.d"
  "test_age"
  "test_age.pdb"
  "test_age[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
