# Empty compiler generated dependencies file for test_statistical_properties.
# This may be replaced when dependencies are built.
