file(REMOVE_RECURSE
  "CMakeFiles/test_statistical_properties.dir/test_statistical_properties.cpp.o"
  "CMakeFiles/test_statistical_properties.dir/test_statistical_properties.cpp.o.d"
  "test_statistical_properties"
  "test_statistical_properties.pdb"
  "test_statistical_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_statistical_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
