file(REMOVE_RECURSE
  "CMakeFiles/test_management.dir/test_management.cpp.o"
  "CMakeFiles/test_management.dir/test_management.cpp.o.d"
  "test_management"
  "test_management.pdb"
  "test_management[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
