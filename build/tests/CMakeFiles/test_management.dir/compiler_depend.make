# Empty compiler generated dependencies file for test_management.
# This may be replaced when dependencies are built.
