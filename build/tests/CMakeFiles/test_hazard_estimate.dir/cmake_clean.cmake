file(REMOVE_RECURSE
  "CMakeFiles/test_hazard_estimate.dir/test_hazard_estimate.cpp.o"
  "CMakeFiles/test_hazard_estimate.dir/test_hazard_estimate.cpp.o.d"
  "test_hazard_estimate"
  "test_hazard_estimate.pdb"
  "test_hazard_estimate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hazard_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
