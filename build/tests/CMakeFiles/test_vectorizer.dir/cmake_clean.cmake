file(REMOVE_RECURSE
  "CMakeFiles/test_vectorizer.dir/test_vectorizer.cpp.o"
  "CMakeFiles/test_vectorizer.dir/test_vectorizer.cpp.o.d"
  "test_vectorizer"
  "test_vectorizer.pdb"
  "test_vectorizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vectorizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
