# Empty compiler generated dependencies file for test_vectorizer.
# This may be replaced when dependencies are built.
