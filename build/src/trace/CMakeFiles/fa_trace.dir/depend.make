# Empty dependencies file for fa_trace.
# This may be replaced when dependencies are built.
