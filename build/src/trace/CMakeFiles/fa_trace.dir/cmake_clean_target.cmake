file(REMOVE_RECURSE
  "libfa_trace.a"
)
