
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/csv_io.cpp" "src/trace/CMakeFiles/fa_trace.dir/csv_io.cpp.o" "gcc" "src/trace/CMakeFiles/fa_trace.dir/csv_io.cpp.o.d"
  "/root/repo/src/trace/database.cpp" "src/trace/CMakeFiles/fa_trace.dir/database.cpp.o" "gcc" "src/trace/CMakeFiles/fa_trace.dir/database.cpp.o.d"
  "/root/repo/src/trace/filters.cpp" "src/trace/CMakeFiles/fa_trace.dir/filters.cpp.o" "gcc" "src/trace/CMakeFiles/fa_trace.dir/filters.cpp.o.d"
  "/root/repo/src/trace/types.cpp" "src/trace/CMakeFiles/fa_trace.dir/types.cpp.o" "gcc" "src/trace/CMakeFiles/fa_trace.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
