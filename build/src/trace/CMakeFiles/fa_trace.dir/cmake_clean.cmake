file(REMOVE_RECURSE
  "CMakeFiles/fa_trace.dir/csv_io.cpp.o"
  "CMakeFiles/fa_trace.dir/csv_io.cpp.o.d"
  "CMakeFiles/fa_trace.dir/database.cpp.o"
  "CMakeFiles/fa_trace.dir/database.cpp.o.d"
  "CMakeFiles/fa_trace.dir/filters.cpp.o"
  "CMakeFiles/fa_trace.dir/filters.cpp.o.d"
  "CMakeFiles/fa_trace.dir/types.cpp.o"
  "CMakeFiles/fa_trace.dir/types.cpp.o.d"
  "libfa_trace.a"
  "libfa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
