# Empty dependencies file for fa_stats.
# This may be replaced when dependencies are built.
