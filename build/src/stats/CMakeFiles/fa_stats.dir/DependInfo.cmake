
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/fa_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/correlation.cpp" "src/stats/CMakeFiles/fa_stats.dir/correlation.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/correlation.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/fa_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/distribution.cpp" "src/stats/CMakeFiles/fa_stats.dir/distribution.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/distribution.cpp.o.d"
  "/root/repo/src/stats/ecdf.cpp" "src/stats/CMakeFiles/fa_stats.dir/ecdf.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/ecdf.cpp.o.d"
  "/root/repo/src/stats/exponential.cpp" "src/stats/CMakeFiles/fa_stats.dir/exponential.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/exponential.cpp.o.d"
  "/root/repo/src/stats/fitting.cpp" "src/stats/CMakeFiles/fa_stats.dir/fitting.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/fitting.cpp.o.d"
  "/root/repo/src/stats/gamma_dist.cpp" "src/stats/CMakeFiles/fa_stats.dir/gamma_dist.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/gamma_dist.cpp.o.d"
  "/root/repo/src/stats/hazard_estimate.cpp" "src/stats/CMakeFiles/fa_stats.dir/hazard_estimate.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/hazard_estimate.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/fa_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/kmeans.cpp" "src/stats/CMakeFiles/fa_stats.dir/kmeans.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/kmeans.cpp.o.d"
  "/root/repo/src/stats/ks.cpp" "src/stats/CMakeFiles/fa_stats.dir/ks.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/ks.cpp.o.d"
  "/root/repo/src/stats/lognormal.cpp" "src/stats/CMakeFiles/fa_stats.dir/lognormal.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/lognormal.cpp.o.d"
  "/root/repo/src/stats/pareto.cpp" "src/stats/CMakeFiles/fa_stats.dir/pareto.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/pareto.cpp.o.d"
  "/root/repo/src/stats/special.cpp" "src/stats/CMakeFiles/fa_stats.dir/special.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/special.cpp.o.d"
  "/root/repo/src/stats/weibull.cpp" "src/stats/CMakeFiles/fa_stats.dir/weibull.cpp.o" "gcc" "src/stats/CMakeFiles/fa_stats.dir/weibull.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
