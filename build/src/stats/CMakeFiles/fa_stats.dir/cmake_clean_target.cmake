file(REMOVE_RECURSE
  "libfa_stats.a"
)
