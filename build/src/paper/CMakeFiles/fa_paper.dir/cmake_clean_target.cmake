file(REMOVE_RECURSE
  "libfa_paper.a"
)
