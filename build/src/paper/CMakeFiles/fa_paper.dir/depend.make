# Empty dependencies file for fa_paper.
# This may be replaced when dependencies are built.
