file(REMOVE_RECURSE
  "CMakeFiles/fa_paper.dir/comparison.cpp.o"
  "CMakeFiles/fa_paper.dir/comparison.cpp.o.d"
  "libfa_paper.a"
  "libfa_paper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_paper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
