# Empty compiler generated dependencies file for fa_util.
# This may be replaced when dependencies are built.
