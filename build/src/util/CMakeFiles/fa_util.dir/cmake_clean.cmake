file(REMOVE_RECURSE
  "CMakeFiles/fa_util.dir/csv.cpp.o"
  "CMakeFiles/fa_util.dir/csv.cpp.o.d"
  "CMakeFiles/fa_util.dir/rng.cpp.o"
  "CMakeFiles/fa_util.dir/rng.cpp.o.d"
  "CMakeFiles/fa_util.dir/sim_time.cpp.o"
  "CMakeFiles/fa_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/fa_util.dir/strings.cpp.o"
  "CMakeFiles/fa_util.dir/strings.cpp.o.d"
  "libfa_util.a"
  "libfa_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
