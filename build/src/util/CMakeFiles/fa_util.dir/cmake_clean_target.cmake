file(REMOVE_RECURSE
  "libfa_util.a"
)
