
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/config.cpp" "src/sim/CMakeFiles/fa_sim.dir/config.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/config.cpp.o.d"
  "/root/repo/src/sim/failures.cpp" "src/sim/CMakeFiles/fa_sim.dir/failures.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/failures.cpp.o.d"
  "/root/repo/src/sim/fleet.cpp" "src/sim/CMakeFiles/fa_sim.dir/fleet.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/fleet.cpp.o.d"
  "/root/repo/src/sim/hazard.cpp" "src/sim/CMakeFiles/fa_sim.dir/hazard.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/hazard.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/fa_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/scenario.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/fa_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/ticketing.cpp" "src/sim/CMakeFiles/fa_sim.dir/ticketing.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/ticketing.cpp.o.d"
  "/root/repo/src/sim/validation.cpp" "src/sim/CMakeFiles/fa_sim.dir/validation.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/validation.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/fa_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/fa_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fa_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
