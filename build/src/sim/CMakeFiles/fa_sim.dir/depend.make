# Empty dependencies file for fa_sim.
# This may be replaced when dependencies are built.
