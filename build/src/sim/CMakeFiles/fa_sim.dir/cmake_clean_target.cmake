file(REMOVE_RECURSE
  "libfa_sim.a"
)
