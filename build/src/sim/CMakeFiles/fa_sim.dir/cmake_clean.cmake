file(REMOVE_RECURSE
  "CMakeFiles/fa_sim.dir/config.cpp.o"
  "CMakeFiles/fa_sim.dir/config.cpp.o.d"
  "CMakeFiles/fa_sim.dir/failures.cpp.o"
  "CMakeFiles/fa_sim.dir/failures.cpp.o.d"
  "CMakeFiles/fa_sim.dir/fleet.cpp.o"
  "CMakeFiles/fa_sim.dir/fleet.cpp.o.d"
  "CMakeFiles/fa_sim.dir/hazard.cpp.o"
  "CMakeFiles/fa_sim.dir/hazard.cpp.o.d"
  "CMakeFiles/fa_sim.dir/scenario.cpp.o"
  "CMakeFiles/fa_sim.dir/scenario.cpp.o.d"
  "CMakeFiles/fa_sim.dir/simulator.cpp.o"
  "CMakeFiles/fa_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/fa_sim.dir/ticketing.cpp.o"
  "CMakeFiles/fa_sim.dir/ticketing.cpp.o.d"
  "CMakeFiles/fa_sim.dir/validation.cpp.o"
  "CMakeFiles/fa_sim.dir/validation.cpp.o.d"
  "CMakeFiles/fa_sim.dir/workload.cpp.o"
  "CMakeFiles/fa_sim.dir/workload.cpp.o.d"
  "libfa_sim.a"
  "libfa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
