# Empty dependencies file for fa_text.
# This may be replaced when dependencies are built.
