file(REMOVE_RECURSE
  "libfa_text.a"
)
