file(REMOVE_RECURSE
  "CMakeFiles/fa_text.dir/features.cpp.o"
  "CMakeFiles/fa_text.dir/features.cpp.o.d"
  "CMakeFiles/fa_text.dir/ticket_text.cpp.o"
  "CMakeFiles/fa_text.dir/ticket_text.cpp.o.d"
  "CMakeFiles/fa_text.dir/vocabulary.cpp.o"
  "CMakeFiles/fa_text.dir/vocabulary.cpp.o.d"
  "libfa_text.a"
  "libfa_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
