# Empty dependencies file for fa_analysis.
# This may be replaced when dependencies are built.
