file(REMOVE_RECURSE
  "CMakeFiles/fa_analysis.dir/age.cpp.o"
  "CMakeFiles/fa_analysis.dir/age.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/burstiness.cpp.o"
  "CMakeFiles/fa_analysis.dir/burstiness.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/capacity_usage.cpp.o"
  "CMakeFiles/fa_analysis.dir/capacity_usage.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/classification.cpp.o"
  "CMakeFiles/fa_analysis.dir/classification.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/failure_rates.cpp.o"
  "CMakeFiles/fa_analysis.dir/failure_rates.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/interfailure.cpp.o"
  "CMakeFiles/fa_analysis.dir/interfailure.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/management.cpp.o"
  "CMakeFiles/fa_analysis.dir/management.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/pipeline.cpp.o"
  "CMakeFiles/fa_analysis.dir/pipeline.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/recurrence.cpp.o"
  "CMakeFiles/fa_analysis.dir/recurrence.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/reliability.cpp.o"
  "CMakeFiles/fa_analysis.dir/reliability.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/repair_times.cpp.o"
  "CMakeFiles/fa_analysis.dir/repair_times.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/report.cpp.o"
  "CMakeFiles/fa_analysis.dir/report.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/spatial.cpp.o"
  "CMakeFiles/fa_analysis.dir/spatial.cpp.o.d"
  "CMakeFiles/fa_analysis.dir/transitions.cpp.o"
  "CMakeFiles/fa_analysis.dir/transitions.cpp.o.d"
  "libfa_analysis.a"
  "libfa_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
