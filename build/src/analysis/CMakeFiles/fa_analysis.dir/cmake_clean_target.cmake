file(REMOVE_RECURSE
  "libfa_analysis.a"
)
