
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/age.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/age.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/age.cpp.o.d"
  "/root/repo/src/analysis/burstiness.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/burstiness.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/burstiness.cpp.o.d"
  "/root/repo/src/analysis/capacity_usage.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/capacity_usage.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/capacity_usage.cpp.o.d"
  "/root/repo/src/analysis/classification.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/classification.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/classification.cpp.o.d"
  "/root/repo/src/analysis/failure_rates.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/failure_rates.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/failure_rates.cpp.o.d"
  "/root/repo/src/analysis/interfailure.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/interfailure.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/interfailure.cpp.o.d"
  "/root/repo/src/analysis/management.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/management.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/management.cpp.o.d"
  "/root/repo/src/analysis/pipeline.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/pipeline.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/pipeline.cpp.o.d"
  "/root/repo/src/analysis/recurrence.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/recurrence.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/recurrence.cpp.o.d"
  "/root/repo/src/analysis/reliability.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/reliability.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/reliability.cpp.o.d"
  "/root/repo/src/analysis/repair_times.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/repair_times.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/repair_times.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/report.cpp.o.d"
  "/root/repo/src/analysis/spatial.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/spatial.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/spatial.cpp.o.d"
  "/root/repo/src/analysis/transitions.cpp" "src/analysis/CMakeFiles/fa_analysis.dir/transitions.cpp.o" "gcc" "src/analysis/CMakeFiles/fa_analysis.dir/transitions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fa_util.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fa_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
