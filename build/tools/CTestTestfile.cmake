# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_usage "/root/repo/build/tools/fa_trace")
set_tests_properties(cli_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_simulate "/root/repo/build/tools/fa_trace" "simulate" "--out" "/root/repo/build/tools/cli_trace" "--scale" "0.1" "--seed" "7")
set_tests_properties(cli_simulate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/fa_trace" "report" "/root/repo/build/tools/cli_trace")
set_tests_properties(cli_report PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_classify "/root/repo/build/tools/fa_trace" "classify" "/root/repo/build/tools/cli_trace")
set_tests_properties(cli_classify PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fit_repair "/root/repo/build/tools/fa_trace" "fit" "/root/repo/build/tools/cli_trace" "repair" "pm")
set_tests_properties(cli_fit_repair PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fit_interfailure "/root/repo/build/tools/fa_trace" "fit" "/root/repo/build/tools/cli_trace" "interfailure" "vm")
set_tests_properties(cli_fit_interfailure PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_missing_dir "/root/repo/build/tools/fa_trace" "report" "/nonexistent/dir")
set_tests_properties(cli_missing_dir PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_transitions "/root/repo/build/tools/fa_trace" "transitions" "/root/repo/build/tools/cli_trace")
set_tests_properties(cli_transitions PROPERTIES  DEPENDS "cli_simulate" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;20;add_test;/root/repo/tools/CMakeLists.txt;0;")
