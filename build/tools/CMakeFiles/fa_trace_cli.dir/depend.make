# Empty dependencies file for fa_trace_cli.
# This may be replaced when dependencies are built.
