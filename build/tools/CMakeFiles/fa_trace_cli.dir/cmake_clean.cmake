file(REMOVE_RECURSE
  "CMakeFiles/fa_trace_cli.dir/fa_trace.cpp.o"
  "CMakeFiles/fa_trace_cli.dir/fa_trace.cpp.o.d"
  "fa_trace"
  "fa_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_trace_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
