file(REMOVE_RECURSE
  "CMakeFiles/reliability_modeling.dir/reliability_modeling.cpp.o"
  "CMakeFiles/reliability_modeling.dir/reliability_modeling.cpp.o.d"
  "reliability_modeling"
  "reliability_modeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reliability_modeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
