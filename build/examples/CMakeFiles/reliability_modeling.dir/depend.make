# Empty dependencies file for reliability_modeling.
# This may be replaced when dependencies are built.
