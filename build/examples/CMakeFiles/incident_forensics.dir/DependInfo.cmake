
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/incident_forensics.cpp" "examples/CMakeFiles/incident_forensics.dir/incident_forensics.cpp.o" "gcc" "examples/CMakeFiles/incident_forensics.dir/incident_forensics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/fa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/fa_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/paper/CMakeFiles/fa_paper.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/fa_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/fa_text.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/fa_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fa_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
