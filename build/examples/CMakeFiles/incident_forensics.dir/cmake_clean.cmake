file(REMOVE_RECURSE
  "CMakeFiles/incident_forensics.dir/incident_forensics.cpp.o"
  "CMakeFiles/incident_forensics.dir/incident_forensics.cpp.o.d"
  "incident_forensics"
  "incident_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incident_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
