# Empty dependencies file for incident_forensics.
# This may be replaced when dependencies are built.
