file(REMOVE_RECURSE
  "CMakeFiles/whatif_vm_refresh.dir/whatif_vm_refresh.cpp.o"
  "CMakeFiles/whatif_vm_refresh.dir/whatif_vm_refresh.cpp.o.d"
  "whatif_vm_refresh"
  "whatif_vm_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_vm_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
