# Empty dependencies file for whatif_vm_refresh.
# This may be replaced when dependencies are built.
