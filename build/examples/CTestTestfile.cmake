# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "0.05")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_reliability "/root/repo/build/examples/reliability_modeling" "0.05")
set_tests_properties(example_reliability PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capacity "/root/repo/build/examples/capacity_planning" "0.05")
set_tests_properties(example_capacity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_forensics "/root/repo/build/examples/incident_forensics" "0.05" "/root/repo/build/examples/forensics_export")
set_tests_properties(example_forensics PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whatif "/root/repo/build/examples/whatif_vm_refresh" "0.05")
set_tests_properties(example_whatif PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bad_scale "/root/repo/build/examples/quickstart" "7")
set_tests_properties(example_bad_scale PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
