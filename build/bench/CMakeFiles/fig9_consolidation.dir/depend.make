# Empty dependencies file for fig9_consolidation.
# This may be replaced when dependencies are built.
