file(REMOVE_RECURSE
  "CMakeFiles/fig9_consolidation.dir/fig9_consolidation.cpp.o"
  "CMakeFiles/fig9_consolidation.dir/fig9_consolidation.cpp.o.d"
  "fig9_consolidation"
  "fig9_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
