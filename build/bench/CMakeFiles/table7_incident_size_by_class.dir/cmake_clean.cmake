file(REMOVE_RECURSE
  "CMakeFiles/table7_incident_size_by_class.dir/table7_incident_size_by_class.cpp.o"
  "CMakeFiles/table7_incident_size_by_class.dir/table7_incident_size_by_class.cpp.o.d"
  "table7_incident_size_by_class"
  "table7_incident_size_by_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_incident_size_by_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
