# Empty dependencies file for table7_incident_size_by_class.
# This may be replaced when dependencies are built.
