# Empty dependencies file for table6_spatial_incidents.
# This may be replaced when dependencies are built.
