file(REMOVE_RECURSE
  "CMakeFiles/table6_spatial_incidents.dir/table6_spatial_incidents.cpp.o"
  "CMakeFiles/table6_spatial_incidents.dir/table6_spatial_incidents.cpp.o.d"
  "table6_spatial_incidents"
  "table6_spatial_incidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_spatial_incidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
