# Empty dependencies file for ablation_recurrence.
# This may be replaced when dependencies are built.
