file(REMOVE_RECURSE
  "CMakeFiles/ablation_recurrence.dir/ablation_recurrence.cpp.o"
  "CMakeFiles/ablation_recurrence.dir/ablation_recurrence.cpp.o.d"
  "ablation_recurrence"
  "ablation_recurrence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recurrence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
