file(REMOVE_RECURSE
  "CMakeFiles/table3_interfailure_by_class.dir/table3_interfailure_by_class.cpp.o"
  "CMakeFiles/table3_interfailure_by_class.dir/table3_interfailure_by_class.cpp.o.d"
  "table3_interfailure_by_class"
  "table3_interfailure_by_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_interfailure_by_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
