# Empty compiler generated dependencies file for table3_interfailure_by_class.
# This may be replaced when dependencies are built.
