file(REMOVE_RECURSE
  "CMakeFiles/table4_repair_by_class.dir/table4_repair_by_class.cpp.o"
  "CMakeFiles/table4_repair_by_class.dir/table4_repair_by_class.cpp.o.d"
  "table4_repair_by_class"
  "table4_repair_by_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_repair_by_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
