# Empty compiler generated dependencies file for table4_repair_by_class.
# This may be replaced when dependencies are built.
