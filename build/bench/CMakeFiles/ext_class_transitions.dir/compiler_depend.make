# Empty compiler generated dependencies file for ext_class_transitions.
# This may be replaced when dependencies are built.
