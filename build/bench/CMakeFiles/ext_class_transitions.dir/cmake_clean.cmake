file(REMOVE_RECURSE
  "CMakeFiles/ext_class_transitions.dir/ext_class_transitions.cpp.o"
  "CMakeFiles/ext_class_transitions.dir/ext_class_transitions.cpp.o.d"
  "ext_class_transitions"
  "ext_class_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_class_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
