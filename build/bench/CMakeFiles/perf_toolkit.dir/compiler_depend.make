# Empty compiler generated dependencies file for perf_toolkit.
# This may be replaced when dependencies are built.
