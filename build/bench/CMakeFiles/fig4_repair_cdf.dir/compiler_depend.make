# Empty compiler generated dependencies file for fig4_repair_cdf.
# This may be replaced when dependencies are built.
