file(REMOVE_RECURSE
  "CMakeFiles/fig1_ticket_classes.dir/fig1_ticket_classes.cpp.o"
  "CMakeFiles/fig1_ticket_classes.dir/fig1_ticket_classes.cpp.o.d"
  "fig1_ticket_classes"
  "fig1_ticket_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_ticket_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
