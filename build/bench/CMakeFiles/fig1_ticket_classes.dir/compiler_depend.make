# Empty compiler generated dependencies file for fig1_ticket_classes.
# This may be replaced when dependencies are built.
