file(REMOVE_RECURSE
  "CMakeFiles/ext_failure_hazard.dir/ext_failure_hazard.cpp.o"
  "CMakeFiles/ext_failure_hazard.dir/ext_failure_hazard.cpp.o.d"
  "ext_failure_hazard"
  "ext_failure_hazard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_failure_hazard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
