# Empty compiler generated dependencies file for ext_failure_hazard.
# This may be replaced when dependencies are built.
