# Empty compiler generated dependencies file for fig5_recurrent_prob.
# This may be replaced when dependencies are built.
