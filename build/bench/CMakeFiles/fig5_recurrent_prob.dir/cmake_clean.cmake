file(REMOVE_RECURSE
  "CMakeFiles/fig5_recurrent_prob.dir/fig5_recurrent_prob.cpp.o"
  "CMakeFiles/fig5_recurrent_prob.dir/fig5_recurrent_prob.cpp.o.d"
  "fig5_recurrent_prob"
  "fig5_recurrent_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_recurrent_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
