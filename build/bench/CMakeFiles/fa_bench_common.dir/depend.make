# Empty dependencies file for fa_bench_common.
# This may be replaced when dependencies are built.
