file(REMOVE_RECURSE
  "CMakeFiles/fa_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/fa_bench_common.dir/bench_common.cpp.o.d"
  "libfa_bench_common.a"
  "libfa_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fa_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
