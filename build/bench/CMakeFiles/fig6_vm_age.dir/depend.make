# Empty dependencies file for fig6_vm_age.
# This may be replaced when dependencies are built.
