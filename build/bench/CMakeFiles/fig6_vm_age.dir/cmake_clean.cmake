file(REMOVE_RECURSE
  "CMakeFiles/fig6_vm_age.dir/fig6_vm_age.cpp.o"
  "CMakeFiles/fig6_vm_age.dir/fig6_vm_age.cpp.o.d"
  "fig6_vm_age"
  "fig6_vm_age.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vm_age.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
