file(REMOVE_RECURSE
  "CMakeFiles/fig8_usage.dir/fig8_usage.cpp.o"
  "CMakeFiles/fig8_usage.dir/fig8_usage.cpp.o.d"
  "fig8_usage"
  "fig8_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
