file(REMOVE_RECURSE
  "CMakeFiles/fig2_failure_rates.dir/fig2_failure_rates.cpp.o"
  "CMakeFiles/fig2_failure_rates.dir/fig2_failure_rates.cpp.o.d"
  "fig2_failure_rates"
  "fig2_failure_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_failure_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
