# Empty compiler generated dependencies file for fig3_interfailure_cdf.
# This may be replaced when dependencies are built.
