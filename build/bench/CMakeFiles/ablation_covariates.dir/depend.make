# Empty dependencies file for ablation_covariates.
# This may be replaced when dependencies are built.
