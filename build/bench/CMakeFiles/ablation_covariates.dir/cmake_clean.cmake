file(REMOVE_RECURSE
  "CMakeFiles/ablation_covariates.dir/ablation_covariates.cpp.o"
  "CMakeFiles/ablation_covariates.dir/ablation_covariates.cpp.o.d"
  "ablation_covariates"
  "ablation_covariates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_covariates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
