# Empty dependencies file for fig10_onoff.
# This may be replaced when dependencies are built.
