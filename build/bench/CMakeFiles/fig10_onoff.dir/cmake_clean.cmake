file(REMOVE_RECURSE
  "CMakeFiles/fig10_onoff.dir/fig10_onoff.cpp.o"
  "CMakeFiles/fig10_onoff.dir/fig10_onoff.cpp.o.d"
  "fig10_onoff"
  "fig10_onoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_onoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
