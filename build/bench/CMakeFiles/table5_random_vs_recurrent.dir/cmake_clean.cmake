file(REMOVE_RECURSE
  "CMakeFiles/table5_random_vs_recurrent.dir/table5_random_vs_recurrent.cpp.o"
  "CMakeFiles/table5_random_vs_recurrent.dir/table5_random_vs_recurrent.cpp.o.d"
  "table5_random_vs_recurrent"
  "table5_random_vs_recurrent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_random_vs_recurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
