# Empty compiler generated dependencies file for table5_random_vs_recurrent.
# This may be replaced when dependencies are built.
